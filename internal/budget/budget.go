// Package budget implements the paper's privacy budget control
// algorithm (Algorithm 1, Section III-C): per-request privacy-loss
// charges that depend on which segment of the output range the noised
// value falls in, caching once the budget is exhausted, and periodic
// budget replenishment as configured at secure boot.
//
// The charging bands come from the exact per-output loss analysis in
// internal/core (the staircase of Fig. 8), so the accumulated charge
// is a true upper bound on the privacy loss actually incurred — the
// property a simple request counter cannot provide on fixed-point
// hardware, where the loss is output-dependent.
package budget

import (
	"errors"
	"fmt"
	"math"

	"ulpdp/internal/core"
	"ulpdp/internal/laplace"
	"ulpdp/internal/obs"
	"ulpdp/internal/urng"
)

// Mode selects which guard the controller applies to out-of-band
// outputs, mirroring the DP-Box's Set Threshold toggle.
type Mode int

const (
	// Thresholding clamps out-of-band outputs to the band edge and
	// charges the top multiplier (the `y = M+n2 if tmp > M+n2` arm of
	// Algorithm 1).
	Thresholding Mode = iota
	// Resampling redraws the noise until the output falls inside the
	// band (the resampling variant described below Algorithm 1).
	Resampling
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Resampling {
		return "resampling"
	}
	return "thresholding"
}

// Config parameterizes a Controller.
type Config struct {
	// Budget is the total privacy budget B in nats. Must be positive.
	Budget float64
	// Mult is the worst-case loss multiplier the guard threshold is
	// computed for (> 1). Defaults to 2 if zero.
	Mult float64
	// Multipliers are the ascending charging-band multipliers of
	// Algorithm 1. Defaults to {1.5, 2} capped by Mult.
	Multipliers []float64
	// Mode selects thresholding (default) or resampling.
	Mode Mode
	// ReplenishPeriod is the number of ticks between budget resets;
	// 0 disables replenishment. Configured once at boot, like the
	// DP-Box's initialization phase.
	ReplenishPeriod uint64
	// Log selects the log datapath (nil = CORDIC).
	Log laplace.LogUnit
	// Source supplies uniform randomness (nil = Taus88 seeded with 1).
	Source urng.Source
	// Obs is an optional telemetry plane; nil costs one nil check per
	// request and nothing else.
	Obs *Metrics
	// ObsChannel indexes the privacy odometer for this controller.
	ObsChannel int
}

// ErrExhausted is returned when the budget is spent and no cached
// response exists yet.
var ErrExhausted = errors.New("budget: privacy budget exhausted and no cached response")

// Response is one answer to a sensor data request.
type Response struct {
	// Value is the noised output.
	Value float64
	// Charged is the privacy loss deducted for this response (0 when
	// served from cache).
	Charged float64
	// FromCache reports that the cached output was replayed because
	// the budget is exhausted.
	FromCache bool
	// Resamples counts extra noise draws (resampling mode only).
	Resamples int
}

// Controller is the budget-control engine embedded in the DP-Box.
type Controller struct {
	par       core.Params
	cfg       Config
	rng       *laplace.Sampler
	threshold int64 // guard threshold in steps
	interior  float64
	segs      []core.Segment
	zSlack    float64
	topCharge float64

	remaining float64
	cache     float64
	cached    bool
	ticks     uint64
}

// New builds a Controller. The guard threshold and charging bands are
// derived from the exact loss analysis of par.
func New(par core.Params, cfg Config) (*Controller, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	if !(cfg.Budget > 0) {
		return nil, fmt.Errorf("budget: non-positive budget %g", cfg.Budget)
	}
	if cfg.Mult == 0 {
		cfg.Mult = 2
	}
	if cfg.Mult <= 1 {
		return nil, fmt.Errorf("budget: loss multiplier %g must exceed 1", cfg.Mult)
	}
	if cfg.Source == nil {
		cfg.Source = urng.NewTaus88(1)
	}
	var threshold int64
	var err error
	if cfg.Mode == Resampling {
		threshold, err = core.ResamplingThreshold(par, cfg.Mult)
	} else {
		threshold, err = core.ThresholdingThreshold(par, cfg.Mult)
	}
	if err != nil {
		return nil, err
	}
	mults := cfg.Multipliers
	if mults == nil {
		for _, m := range []float64{1.5, 2} {
			if m < cfg.Mult {
				mults = append(mults, m)
			}
		}
	}
	for i, m := range mults {
		if m <= 1 || m >= cfg.Mult {
			return nil, fmt.Errorf("budget: multiplier %g (index %d) outside (1, %g)", m, i, cfg.Mult)
		}
		if i > 0 && m <= mults[i-1] {
			return nil, fmt.Errorf("budget: multipliers must be ascending")
		}
	}
	an := core.CachedAnalyzer(par)
	// The charging bands come from the thresholding per-output loss
	// profile. In resampling mode each input's conditional
	// distribution is renormalized by its acceptance mass Z(x), which
	// inflates interior per-output losses by at most
	// ln(Zmax/Zmin) <= -ln(1 - 2·Pr[|n| >= threshold]); fold that
	// slack into the charges so they stay sound. The top charge is
	// the analyzer-certified Mult·ε bound and needs no slack.
	zSlack := 0.0
	if cfg.Mode == Resampling {
		tail := laplace.NewDist(par.FxP()).TailMag(threshold)
		zSlack = -math.Log1p(-2 * tail)
	}
	rng, err := laplace.NewSampler(par.FxP(), cfg.Log, cfg.Source)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		par:       par,
		cfg:       cfg,
		rng:       rng,
		threshold: threshold,
		interior:  an.InteriorLoss(threshold) + zSlack,
		segs:      an.Segments(threshold, mults),
		zSlack:    zSlack,
		topCharge: cfg.Mult * par.Eps,
		remaining: cfg.Budget,
	}
	if c.interior > c.topCharge {
		c.interior = c.topCharge
	}
	return c, nil
}

// Threshold returns the guard threshold in steps of Δ.
func (c *Controller) Threshold() int64 { return c.threshold }

// Remaining returns the unspent budget in nats.
func (c *Controller) Remaining() float64 { return c.remaining }

// Segments returns the charging bands in use.
func (c *Controller) Segments() []core.Segment {
	out := make([]core.Segment, len(c.segs))
	copy(out, c.segs)
	return out
}

// InteriorCharge returns the ε_RNG charge for in-range outputs.
func (c *Controller) InteriorCharge() float64 { return c.interior }

// ChargeFor returns the privacy loss Algorithm 1 charges for a noised
// output at step y (before any clamping).
func (c *Controller) ChargeFor(y int64) float64 {
	charge, _ := c.chargeBandFor(y)
	return charge
}

// chargeBandFor returns the charge plus its band index (0 interior,
// 1..n segment bands, n+1 top) for the telemetry plane.
func (c *Controller) chargeBandFor(y int64) (float64, int64) {
	lo, hi := c.par.LoSteps(), c.par.HiSteps()
	if y >= lo && y <= hi {
		return c.interior, 0
	}
	var offset int64
	if y > hi {
		offset = y - hi
	} else {
		offset = lo - y
	}
	for i, s := range c.segs {
		if offset <= s.Offset {
			charge := s.Mult*c.par.Eps + c.zSlack
			if charge > c.topCharge {
				charge = c.topCharge
			}
			return charge, int64(i) + 1
		}
	}
	return c.topCharge, int64(len(c.segs)) + 1
}

// Tick advances the controller's notion of time by n ticks,
// replenishing the budget each time the configured period elapses.
func (c *Controller) Tick(n uint64) {
	if c.cfg.ReplenishPeriod == 0 {
		return
	}
	c.ticks += n
	for c.ticks >= c.cfg.ReplenishPeriod {
		c.ticks -= c.cfg.ReplenishPeriod
		c.remaining = c.cfg.Budget
		if m := c.cfg.Obs; m != nil {
			m.Replenishes.Inc()
			m.Odometer.Replenish()
		}
	}
}

// Request answers one sensor data request for the private value x,
// per Algorithm 1: noise, segment-charge, guard, decrement; or replay
// the cache when the budget is spent.
func (c *Controller) Request(x float64) (Response, error) {
	if c.remaining <= 0 {
		if !c.cached {
			return Response{}, ErrExhausted
		}
		if m := c.cfg.Obs; m != nil {
			m.Requests.Inc()
			m.CacheReplays.Inc()
		}
		return Response{Value: c.cache, FromCache: true}, nil
	}
	xs := c.par.QuantizeInput(x)
	lo := c.par.LoSteps() - c.threshold
	hi := c.par.HiSteps() + c.threshold

	var y int64
	resamples := 0
	if c.cfg.Mode == Resampling {
		for {
			y = xs + c.rng.SampleK()
			if y >= lo && y <= hi {
				break
			}
			resamples++
			if resamples >= 1024 {
				return Response{}, errors.New("budget: resampling did not converge")
			}
		}
	} else {
		y = xs + c.rng.SampleK()
		if y < lo {
			y = lo
		}
		if y > hi {
			y = hi
		}
	}
	charge, band := c.chargeBandFor(y)
	c.remaining = math.Max(0, c.remaining-charge)
	v := c.par.StepValue(y)
	c.cache, c.cached = v, true
	if m := c.cfg.Obs; m != nil {
		m.Requests.Inc()
		if resamples > 0 {
			m.Resamples.Add(uint64(resamples))
		}
		m.Odometer.Charge(c.cfg.ObsChannel, charge)
		m.ChargeMicroNat.Observe(obs.MicroNats(charge))
		m.ChargeBands.Observe(band)
	}
	return Response{Value: v, Charged: charge, Resamples: resamples}, nil
}
