package urng

import "testing"

// mustBattery runs the battery and fails the test on a sizing error.
func mustBattery(t *testing.T, src Source, n int) []BatteryResult {
	t.Helper()
	results, err := RunBattery(src, n)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestBatteryPassesGoodGenerators(t *testing.T) {
	for name, src := range map[string]Source{
		"taus88":   NewTaus88(2026),
		"lfsr113":  NewLFSR113(2026),
		"splitmix": NewSplitMix64(2026),
	} {
		results := mustBattery(t, src, 1<<16)
		for _, r := range results {
			if !r.Pass {
				t.Errorf("%s failed %s: z = %g", name, r.Name, r.Statistic)
			}
		}
		if !Passed(results) {
			t.Errorf("%s battery verdict false", name)
		}
	}
}

// brokenLCG is a deliberately poor generator (small-modulus LCG whose
// low bits cycle), used to prove the battery has teeth.
type brokenLCG struct{ state uint32 }

func (b *brokenLCG) Uint32() uint32 {
	b.state = b.state*1103515245 + 12345
	// Emit only 8 meaningful bits, replicated: grossly non-uniform.
	top := b.state >> 24
	return top | top<<8 | top<<16 | top<<24
}

// stuckBit is a generator with one always-set bit.
type stuckBit struct{ inner Source }

func (s *stuckBit) Uint32() uint32 { return s.inner.Uint32() | 1 }

func TestBatteryCatchesBrokenGenerators(t *testing.T) {
	if Passed(mustBattery(t, &brokenLCG{state: 1}, 1<<14)) {
		t.Error("battery passed a replicated-byte LCG")
	}
	if Passed(mustBattery(t, &stuckBit{inner: NewTaus88(1)}, 1<<16)) {
		t.Error("battery passed a stuck-bit generator")
	}
}

func TestBatteryErrorsOnTinySample(t *testing.T) {
	if _, err := RunBattery(NewTaus88(1), 100); err == nil {
		t.Fatal("expected a sizing error")
	}
}

func TestBatteryDeterministic(t *testing.T) {
	a := mustBattery(t, NewTaus88(7), 1<<14)
	b := mustBattery(t, NewTaus88(7), 1<<14)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("battery not deterministic for a fixed seed")
		}
	}
}
