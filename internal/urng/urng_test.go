package urng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBitsRange(t *testing.T) {
	src := NewTaus88(1)
	for b := 1; b <= 32; b += 7 {
		for i := 0; i < 2000; i++ {
			m := Bits(src, b)
			if m < 1 || m > 1<<uint(b) {
				t.Fatalf("Bits(%d) = %d out of (0, 2^%d]", b, m, b)
			}
		}
	}
}

func TestBitsPanicsOutOfRange(t *testing.T) {
	for _, b := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bits(%d) should panic", b)
				}
			}()
			Bits(NewTaus88(1), b)
		}()
	}
}

func TestUnitRange(t *testing.T) {
	src := NewLFSR113(7)
	for i := 0; i < 5000; i++ {
		u := Unit(src, 17)
		if u <= 0 || u > 1 {
			t.Fatalf("Unit = %g out of (0,1]", u)
		}
	}
}

func TestBitsExhaustiveSmallB(t *testing.T) {
	// With b=3 every value in {1..8} must appear and the counts must
	// be near-uniform over a long stream.
	src := NewTaus88(42)
	counts := make(map[uint64]int)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[Bits(src, 3)]++
	}
	if len(counts) != 8 {
		t.Fatalf("expected 8 distinct values, got %d", len(counts))
	}
	want := float64(n) / 8
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d count %d deviates from %g", v, c, want)
		}
	}
}

func TestTaus88Deterministic(t *testing.T) {
	a, b := NewTaus88(123), NewTaus88(123)
	for i := 0; i < 100; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatal("same seed should give same stream")
		}
	}
	c := NewTaus88(124)
	same := true
	a = NewTaus88(123)
	for i := 0; i < 10; i++ {
		if a.Uint32() != c.Uint32() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different streams")
	}
}

func TestLFSR113Deterministic(t *testing.T) {
	a, b := NewLFSR113(99), NewLFSR113(99)
	for i := 0; i < 100; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatal("same seed should give same stream")
		}
	}
}

func TestSeedLowComponentsRecover(t *testing.T) {
	// Even a seed that produces tiny state components must yield a
	// non-degenerate stream (the component minimums are enforced).
	var z Taus88
	z.Seed(0)
	seen := make(map[uint32]bool)
	for i := 0; i < 64; i++ {
		seen[z.Uint32()] = true
	}
	if len(seen) < 32 {
		t.Errorf("stream looks degenerate: %d distinct in 64 draws", len(seen))
	}
	var l LFSR113
	l.Seed(0)
	seen = make(map[uint32]bool)
	for i := 0; i < 64; i++ {
		seen[l.Uint32()] = true
	}
	if len(seen) < 32 {
		t.Errorf("lfsr stream looks degenerate: %d distinct in 64 draws", len(seen))
	}
}

func meanAndVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs))
	return
}

func TestTaus88Moments(t *testing.T) {
	src := NewTaus88(2026)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(src.Uint32()) / (1 << 32)
	}
	mean, variance := meanAndVar(xs)
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %g, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.002 {
		t.Errorf("variance = %g, want ~%g", variance, 1.0/12)
	}
}

func TestSplitMixFloat64Range(t *testing.T) {
	s := NewSplitMix64(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestSplitMixNormMoments(t *testing.T) {
	s := NewSplitMix64(11)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.NormFloat64()
	}
	mean, variance := meanAndVar(xs)
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %g", variance)
	}
}

func TestSplitMixExpMoments(t *testing.T) {
	s := NewSplitMix64(13)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.ExpFloat64()
	}
	mean, variance := meanAndVar(xs)
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("exp mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("exp variance = %g", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewSplitMix64(3)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	s.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSplitMix64(17)
	prop := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestUnitQuantization(t *testing.T) {
	// Unit(b) must always be an exact multiple of 2^-b.
	src := NewTaus88(77)
	prop := func(raw uint8) bool {
		b := int(raw%32) + 1
		u := Unit(src, b)
		scaled := math.Ldexp(u, b)
		return scaled == math.Trunc(scaled)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
