// Package urng provides the uniform random number generators used by
// the DP-Box datapath and by the simulation harness.
//
// The hardware-faithful generators are combined Tausworthe generators:
// Taus88 (three-component, the generator cited by the paper's RNG
// reference) and LFSR113 (four-component, longer period). Both emit
// 32-bit words from which the FxP RNG draws its B_u-bit uniform
// input u = m·2^-B_u with m ∈ {1, …, 2^B_u} (the value 0 is excluded
// because log(0) is undefined in the inverse-CDF map).
//
// SplitMix64 is a small, fast, seedable generator used only for
// simulation-level randomness (dataset synthesis, shuffling); it does
// not model hardware.
package urng

import "math"

// Source is a stream of uniformly distributed 32-bit words.
type Source interface {
	// Uint32 returns the next 32 uniform bits.
	Uint32() uint32
}

// Bits draws a B-bit uniform integer m in {1, …, 2^B} from src.
// It rejects the all-zero pattern and maps it to 2^B, preserving
// uniformity exactly (both 0 and 2^B correspond to a single pattern).
// B must be in [1, 32].
func Bits(src Source, b int) uint64 {
	if b < 1 || b > 32 {
		panic("urng: bit count out of range [1,32]")
	}
	m := uint64(src.Uint32())
	if b < 32 {
		m &= (1 << uint(b)) - 1
	}
	if m == 0 {
		m = 1 << uint(b)
	}
	return m
}

// Unit draws u = m·2^-B ∈ (0, 1] exactly as the hardware URNG block
// presents it to the inverse-CDF stage.
func Unit(src Source, b int) float64 {
	return math.Ldexp(float64(Bits(src, b)), -b)
}

// Taus88 is the three-component combined Tausworthe generator of
// L'Ecuyer (1996) with period ≈ 2^88. The state components must stay
// above small thresholds (s0 ≥ 2, s1 ≥ 8, s2 ≥ 16) or the component
// degenerates to all-zero; Seed enforces this.
type Taus88 struct {
	s0, s1, s2 uint32
}

// NewTaus88 returns a seeded Taus88 generator.
func NewTaus88(seed uint64) *Taus88 {
	t := &Taus88{}
	t.Seed(seed)
	return t
}

// Seed initializes the state from a 64-bit seed via SplitMix64,
// enforcing the per-component minimums.
func (t *Taus88) Seed(seed uint64) {
	sm := NewSplitMix64(seed)
	t.s0 = uint32(sm.Uint64())
	t.s1 = uint32(sm.Uint64())
	t.s2 = uint32(sm.Uint64())
	if t.s0 < 2 {
		t.s0 += 2
	}
	if t.s1 < 8 {
		t.s1 += 8
	}
	if t.s2 < 16 {
		t.s2 += 16
	}
}

// Uint32 advances the generator and returns the next word.
func (t *Taus88) Uint32() uint32 {
	b := ((t.s0 << 13) ^ t.s0) >> 19
	t.s0 = ((t.s0 & 0xFFFFFFFE) << 12) ^ b
	b = ((t.s1 << 2) ^ t.s1) >> 25
	t.s1 = ((t.s1 & 0xFFFFFFF8) << 4) ^ b
	b = ((t.s2 << 3) ^ t.s2) >> 11
	t.s2 = ((t.s2 & 0xFFFFFFF0) << 17) ^ b
	return t.s0 ^ t.s1 ^ t.s2
}

// LFSR113 is the four-component combined Tausworthe generator of
// L'Ecuyer (1999) with period ≈ 2^113.
type LFSR113 struct {
	z0, z1, z2, z3 uint32
}

// NewLFSR113 returns a seeded LFSR113 generator.
func NewLFSR113(seed uint64) *LFSR113 {
	g := &LFSR113{}
	g.Seed(seed)
	return g
}

// Seed initializes the state, enforcing the per-component minimums
// (z0 ≥ 2, z1 ≥ 8, z2 ≥ 16, z3 ≥ 128).
func (g *LFSR113) Seed(seed uint64) {
	sm := NewSplitMix64(seed)
	g.z0 = uint32(sm.Uint64())
	g.z1 = uint32(sm.Uint64())
	g.z2 = uint32(sm.Uint64())
	g.z3 = uint32(sm.Uint64())
	if g.z0 < 2 {
		g.z0 += 2
	}
	if g.z1 < 8 {
		g.z1 += 8
	}
	if g.z2 < 16 {
		g.z2 += 16
	}
	if g.z3 < 128 {
		g.z3 += 128
	}
}

// Uint32 advances the generator and returns the next word.
func (g *LFSR113) Uint32() uint32 {
	b := ((g.z0 << 6) ^ g.z0) >> 13
	g.z0 = ((g.z0 & 0xFFFFFFFE) << 18) ^ b
	b = ((g.z1 << 2) ^ g.z1) >> 27
	g.z1 = ((g.z1 & 0xFFFFFFF8) << 2) ^ b
	b = ((g.z2 << 13) ^ g.z2) >> 21
	g.z2 = ((g.z2 & 0xFFFFFFF0) << 7) ^ b
	b = ((g.z3 << 3) ^ g.z3) >> 12
	g.z3 = ((g.z3 & 0xFFFFFF80) << 13) ^ b
	return g.z0 ^ g.z1 ^ g.z2 ^ g.z3
}

// SplitMix64 is Steele, Lea & Flood's 64-bit mixer. It is used for
// seeding and for simulation-level randomness where hardware fidelity
// is irrelevant.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next 64 uniform bits.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniform bits, satisfying Source.
func (s *SplitMix64) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Float64 returns a uniform float64 in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar).
func (s *SplitMix64) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (s *SplitMix64) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("urng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (s *SplitMix64) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
