package urng

import (
	"fmt"
	"math"
)

// This file is a small statistical test battery (monobit, runs,
// block-frequency, serial correlation) in the spirit of NIST
// SP 800-22, sized for unit tests. The DP guarantee leans on the
// URNG's uniformity — a biased generator skews the noise PMF away
// from the analyzed one — so the repository checks its generators
// the way an RNG hardware block would be qualified.

// BatteryResult is one statistic with its acceptance verdict.
type BatteryResult struct {
	// Name identifies the test.
	Name string
	// Statistic is the standardized test statistic (approximately
	// N(0,1) or χ²-derived z-score under the null).
	Statistic float64
	// Pass reports |Statistic| below the battery's 4.5σ acceptance
	// band (false-positive odds ~1e-5 per test, safe for CI).
	Pass bool
}

// acceptSigma is the acceptance band in standard deviations.
const acceptSigma = 4.5

// RunBattery draws n words from src and evaluates the battery. The
// sample size is caller-supplied configuration, so an undersized n is
// a returned error, not a panic (DESIGN.md §6).
func RunBattery(src Source, n int) ([]BatteryResult, error) {
	if n < 1024 {
		return nil, fmt.Errorf("urng: battery needs >= 1024 words, got %d", n)
	}
	words := make([]uint32, n)
	for i := range words {
		words[i] = src.Uint32()
	}
	return []BatteryResult{
		monobit(words),
		runsTest(words),
		blockFrequency(words, 64),
		serialCorrelation(words),
		bytePairChi(words),
	}, nil
}

// Passed reports whether every test in the battery passed.
func Passed(results []BatteryResult) bool {
	for _, r := range results {
		if !r.Pass {
			return false
		}
	}
	return true
}

func verdict(name string, z float64) BatteryResult {
	return BatteryResult{Name: name, Statistic: z, Pass: math.Abs(z) <= acceptSigma}
}

// monobit compares the total one-bit count against n·16.
func monobit(words []uint32) BatteryResult {
	ones := 0
	for _, w := range words {
		ones += popcount(w)
	}
	bits := float64(len(words) * 32)
	z := (float64(ones) - bits/2) / math.Sqrt(bits/4)
	return verdict("monobit", z)
}

// runsTest counts bit-level runs across the stream.
func runsTest(words []uint32) BatteryResult {
	var runs int
	var prev uint32
	first := true
	var bits int
	for _, w := range words {
		for i := 0; i < 32; i++ {
			b := (w >> uint(i)) & 1
			if first || b != prev {
				runs++
				first = false
			}
			prev = b
			bits++
		}
	}
	// Under the null, runs ~ N(n/2 + 1/2, ~n/4) for unbiased bits.
	n := float64(bits)
	mean := n/2 + 0.5
	z := (float64(runs) - mean) / math.Sqrt(n/4)
	return verdict("runs", z)
}

// blockFrequency is a χ² over per-block one-bit counts.
func blockFrequency(words []uint32, blockWords int) BatteryResult {
	blocks := len(words) / blockWords
	var chi2 float64
	for b := 0; b < blocks; b++ {
		ones := 0
		for i := 0; i < blockWords; i++ {
			ones += popcount(words[b*blockWords+i])
		}
		bits := float64(blockWords * 32)
		p := float64(ones) / bits
		chi2 += 4 * bits * (p - 0.5) * (p - 0.5)
	}
	// χ²(k) has mean k, variance 2k: standardize.
	k := float64(blocks)
	z := (chi2 - k) / math.Sqrt(2*k)
	return verdict("block-frequency", z)
}

// serialCorrelation measures lag-1 correlation of the word stream.
func serialCorrelation(words []uint32) BatteryResult {
	n := len(words) - 1
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		x := float64(words[i]) / (1 << 32)
		y := float64(words[i+1]) / (1 << 32)
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	fn := float64(n)
	cov := sxy/fn - (sx/fn)*(sy/fn)
	vx := sxx/fn - (sx/fn)*(sx/fn)
	vy := syy/fn - (sy/fn)*(sy/fn)
	r := cov / math.Sqrt(vx*vy)
	// r ~ N(0, 1/n) under the null.
	z := r * math.Sqrt(fn)
	return verdict("serial-correlation", z)
}

// bytePairChi is a χ² over the 256-bin histogram of low bytes.
func bytePairChi(words []uint32) BatteryResult {
	var counts [256]float64
	for _, w := range words {
		counts[w&0xFF]++
	}
	expected := float64(len(words)) / 256
	var chi2 float64
	for _, c := range counts {
		d := c - expected
		chi2 += d * d / expected
	}
	// χ²(255): standardize.
	z := (chi2 - 255) / math.Sqrt(2*255)
	return verdict("byte-histogram", z)
}

func popcount(w uint32) int {
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}
