package sensor

import (
	"errors"
	"math"
	"testing"
)

func TestReplayExhaustsAndCycles(t *testing.T) {
	data := []float64{1, 2, 3}
	r := NewReplay(data, false)
	for i, want := range data {
		v, err := r.Read()
		if err != nil || v != want {
			t.Fatalf("read %d = %g, %v", i, v, err)
		}
	}
	if _, err := r.Read(); !errors.Is(err, ErrExhausted) {
		t.Errorf("err = %v, want ErrExhausted", err)
	}
	c := NewReplay(data, true)
	for i := 0; i < 10; i++ {
		v, err := c.Read()
		if err != nil || v != data[i%3] {
			t.Fatalf("cycled read %d = %g, %v", i, v, err)
		}
	}
}

func TestReplayRangeAndRemaining(t *testing.T) {
	r := NewReplay([]float64{5, -2, 9}, false)
	lo, hi := r.Range()
	if lo != -2 || hi != 9 {
		t.Errorf("range = [%g, %g]", lo, hi)
	}
	if r.Remaining() != 3 {
		t.Errorf("remaining = %d", r.Remaining())
	}
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 2 {
		t.Errorf("remaining after read = %d", r.Remaining())
	}
}

func TestReplayPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReplay(nil, false)
}

func TestSyntheticStaysInRangeAndQuantized(t *testing.T) {
	s := NewSynthetic(0, 100, 64, 0.05, 10, 7)
	step := 100.0 / 1023
	for i := 0; i < 1000; i++ {
		v, err := s.Read()
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 || v > 100 {
			t.Fatalf("reading %g out of range", v)
		}
		levels := (v - 0) / step
		if math.Abs(levels-math.Round(levels)) > 1e-6 {
			t.Fatalf("reading %g not on ADC grid", v)
		}
	}
}

func TestSyntheticPanicsOnBadParams(t *testing.T) {
	cases := []func(){
		func() { NewSynthetic(1, 1, 10, 0, 8, 1) },
		func() { NewSynthetic(0, 1, 0, 0, 8, 1) },
		func() { NewSynthetic(0, 1, 10, 0, 0, 1) },
		func() { NewSynthetic(0, 1, 10, -1, 8, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestBusCycleModel(t *testing.T) {
	b := NewBus(40) // 16 MHz core / 400 kHz bus
	// 2-byte payload: start/stop (2) + 3 bytes * 9 clocks = 29 bus
	// clocks = 1160 core cycles — "10s of cycles" at bus speed,
	// ~1000s at core speed.
	if got := b.TransferCycles(2); got != 29*40 {
		t.Errorf("transfer cycles = %d, want %d", got, 29*40)
	}
	b.Transfer(2)
	b.Transfer(2)
	if b.TotalCycles() != 2*29*40 {
		t.Errorf("total = %d", b.TotalCycles())
	}
}

func TestBusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBus(0)
}

func TestBusNegativeTransferPanics(t *testing.T) {
	b := NewBus(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.TransferCycles(-1)
}

func TestNodeSample(t *testing.T) {
	n := &Node{Sensor: NewReplay([]float64{42}, true), Bus: NewBus(40)}
	r, err := n.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 42 {
		t.Errorf("value = %g", r.Value)
	}
	if r.BusCycles != 29*40 {
		t.Errorf("bus cycles = %d", r.BusCycles)
	}
}

func TestNodePropagatesExhaustion(t *testing.T) {
	n := &Node{Sensor: NewReplay([]float64{1}, false), Bus: NewBus(1)}
	if _, err := n.Sample(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Sample(); !errors.Is(err, ErrExhausted) {
		t.Errorf("err = %v", err)
	}
}
