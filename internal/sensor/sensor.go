// Package sensor simulates the sensing side of a ULP node: sensors
// producing quantized readings and the serial (I²C-style) bus that
// the paper's Section V invokes when arguing the DP-Box critical path
// is adequate ("accompanying sensors take 10s of cycles to access").
package sensor

import (
	"errors"
	"fmt"
	"math"

	"ulpdp/internal/urng"
)

// Sensor produces scalar readings.
type Sensor interface {
	// Read returns the next reading.
	Read() (float64, error)
	// Range returns the sensor's [lo, hi] output range.
	Range() (lo, hi float64)
}

// ErrExhausted is returned by replay sensors at end of data.
var ErrExhausted = errors.New("sensor: replay exhausted")

// Replay replays a recorded dataset, optionally cycling.
type Replay struct {
	data  []float64
	pos   int
	cycle bool
	lo    float64
	hi    float64
}

// NewReplay builds a replay sensor over data. With cycle true, the
// trace restarts at the end. It panics on empty data.
func NewReplay(data []float64, cycle bool) *Replay {
	if len(data) == 0 {
		panic("sensor: empty replay data")
	}
	lo, hi := data[0], data[0]
	for _, v := range data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return &Replay{data: data, cycle: cycle, lo: lo, hi: hi}
}

// Read implements Sensor.
func (r *Replay) Read() (float64, error) {
	if r.pos >= len(r.data) {
		if !r.cycle {
			return 0, ErrExhausted
		}
		r.pos = 0
	}
	v := r.data[r.pos]
	r.pos++
	return v, nil
}

// Range implements Sensor.
func (r *Replay) Range() (float64, float64) { return r.lo, r.hi }

// Remaining returns the number of unread samples (0 when cycling).
func (r *Replay) Remaining() int {
	if r.cycle {
		return 0
	}
	return len(r.data) - r.pos
}

// Synthetic produces a sinusoid plus Gaussian jitter quantized to an
// ADC resolution — a stand-in for a live physical sensor.
type Synthetic struct {
	lo, hi    float64
	period    float64
	jitter    float64
	adcLevels int
	t         float64
	rng       *urng.SplitMix64
}

// NewSynthetic builds a synthetic sensor with the given range,
// period (in samples), jitter standard deviation (fraction of range)
// and ADC bit depth. It panics on invalid parameters.
func NewSynthetic(lo, hi, period, jitterFrac float64, adcBits int, seed uint64) *Synthetic {
	if hi <= lo {
		panic("sensor: empty range")
	}
	if period <= 0 || adcBits < 1 || adcBits > 24 || jitterFrac < 0 {
		panic(fmt.Sprintf("sensor: bad parameters period=%g bits=%d jitter=%g", period, adcBits, jitterFrac))
	}
	return &Synthetic{
		lo: lo, hi: hi, period: period, jitter: jitterFrac * (hi - lo),
		adcLevels: 1 << adcBits, rng: urng.NewSplitMix64(seed),
	}
}

// Read implements Sensor.
func (s *Synthetic) Read() (float64, error) {
	mid := (s.lo + s.hi) / 2
	amp := (s.hi - s.lo) / 2 * 0.9
	v := mid + amp*math.Sin(2*math.Pi*s.t/s.period) + s.jitter*s.rng.NormFloat64()
	s.t++
	v = math.Max(s.lo, math.Min(s.hi, v))
	// ADC quantization.
	step := (s.hi - s.lo) / float64(s.adcLevels-1)
	return s.lo + math.Round((v-s.lo)/step)*step, nil
}

// Range implements Sensor.
func (s *Synthetic) Range() (float64, float64) { return s.lo, s.hi }

// Bus models a serial peripheral bus (I²C-like) clocked slower than
// the core: each transaction costs start/stop overhead plus 9 bus
// clocks per byte (8 data + ACK), expressed in core cycles.
type Bus struct {
	// CoreClocksPerBusClock is the clock ratio (e.g. 16 MHz core,
	// 400 kHz bus -> 40).
	CoreClocksPerBusClock int
	// cycles accumulates total bus occupancy in core cycles.
	cycles uint64
}

// NewBus returns a bus with the given clock ratio. It panics if the
// ratio is not positive.
func NewBus(coreClocksPerBusClock int) *Bus {
	if coreClocksPerBusClock < 1 {
		panic("sensor: bus clock ratio must be positive")
	}
	return &Bus{CoreClocksPerBusClock: coreClocksPerBusClock}
}

// TransferCycles returns the core-cycle cost of moving n payload
// bytes (plus the address byte and start/stop conditions).
func (b *Bus) TransferCycles(n int) uint64 {
	if n < 0 {
		panic("sensor: negative transfer size")
	}
	busClocks := 2 + 9*(n+1) // start+stop + (addr + payload) bytes with ACKs
	return uint64(busClocks * b.CoreClocksPerBusClock)
}

// Transfer records a transaction of n payload bytes and returns its
// core-cycle cost.
func (b *Bus) Transfer(n int) uint64 {
	c := b.TransferCycles(n)
	b.cycles += c
	return c
}

// TotalCycles returns the accumulated bus occupancy.
func (b *Bus) TotalCycles() uint64 { return b.cycles }

// Reading is one sampled, bus-transferred sensor value.
type Reading struct {
	// Value is the sensor output.
	Value float64
	// BusCycles is the core-cycle cost of fetching it.
	BusCycles uint64
}

// Node couples a sensor to the core over a bus: Sample reads one
// value and accounts for the transfer (2 bytes per reading, the
// typical 10-16 bit ADC word).
type Node struct {
	Sensor Sensor
	Bus    *Bus
}

// Sample fetches one reading over the bus.
func (n *Node) Sample() (Reading, error) {
	v, err := n.Sensor.Read()
	if err != nil {
		return Reading{}, err
	}
	c := n.Bus.Transfer(2)
	return Reading{Value: v, BusCycles: c}, nil
}
