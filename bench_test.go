package ulpdp

// One benchmark per table and figure of the paper, each regenerating
// the exhibit end to end at reduced (Quick) scale, plus
// micro-benchmarks of the hot paths. Run the exhibits at full scale
// with cmd/dpbench.

import (
	"io"
	"testing"

	"ulpdp/internal/core"
	"ulpdp/internal/experiments"
	"ulpdp/internal/fault"
	"ulpdp/internal/laplace"
	"ulpdp/internal/msp430"
	"ulpdp/internal/obs"
	"ulpdp/internal/urng"
)

func benchExhibit(b *testing.B, name string) {
	b.Helper()
	cfg := experiments.Quick()
	run := experiments.Registry[name]
	if run == nil {
		b.Fatalf("unknown exhibit %s", name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B)     { benchExhibit(b, "fig4") }
func BenchmarkFigure6(b *testing.B)     { benchExhibit(b, "fig6") }
func BenchmarkFigure7(b *testing.B)     { benchExhibit(b, "fig7") }
func BenchmarkFigure8(b *testing.B)     { benchExhibit(b, "fig8") }
func BenchmarkFigure11(b *testing.B)    { benchExhibit(b, "fig11") }
func BenchmarkFigure12(b *testing.B)    { benchExhibit(b, "fig12") }
func BenchmarkFigure13(b *testing.B)    { benchExhibit(b, "fig13") }
func BenchmarkFigure14(b *testing.B)    { benchExhibit(b, "fig14") }
func BenchmarkFigure15(b *testing.B)    { benchExhibit(b, "fig15") }
func BenchmarkTableI(b *testing.B)      { benchExhibit(b, "table1") }
func BenchmarkTableII(b *testing.B)     { benchExhibit(b, "table2") }
func BenchmarkTableIII(b *testing.B)    { benchExhibit(b, "table3") }
func BenchmarkTableIV(b *testing.B)     { benchExhibit(b, "table4") }
func BenchmarkTableV(b *testing.B)      { benchExhibit(b, "table5") }
func BenchmarkTableVI(b *testing.B)     { benchExhibit(b, "table6") }
func BenchmarkSectionIIID(b *testing.B) { benchExhibit(b, "sec3d") }
func BenchmarkSectionV(b *testing.B)    { benchExhibit(b, "sec5") }

// Ablations and extensions beyond the paper.
func BenchmarkAblateRNG(b *testing.B)      { benchExhibit(b, "ablate-rng") }
func BenchmarkAblateCharging(b *testing.B) { benchExhibit(b, "ablate-charging") }
func BenchmarkAblateLog(b *testing.B)      { benchExhibit(b, "ablate-log") }
func BenchmarkAblateFamily(b *testing.B)   { benchExhibit(b, "ablate-family") }
func BenchmarkAblateFloat(b *testing.B)    { benchExhibit(b, "ablate-float") }
func BenchmarkExtRappor(b *testing.B)      { benchExhibit(b, "ext-rappor") }

// --- micro-benchmarks of the hot paths ---

var benchPar = core.Params{Lo: 0, Hi: 10, Eps: 0.5, Bu: 17, By: 12, Delta: 10.0 / 32}

// BenchmarkNoiseIdeal measures one real-valued Laplace report.
func BenchmarkNoiseIdeal(b *testing.B) {
	m, err := core.NewIdealLaplace(benchPar, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Noise(5)
	}
}

// BenchmarkNoiseBaselineCordic measures the naive FxP report through
// the bit-accurate CORDIC datapath.
func BenchmarkNoiseBaselineCordic(b *testing.B) {
	m, err := core.NewBaseline(benchPar, nil, urng.NewTaus88(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Noise(5)
	}
}

// BenchmarkNoiseThresholding measures the certified thresholding
// guard per report.
func BenchmarkNoiseThresholding(b *testing.B) {
	th, err := core.ThresholdingThreshold(benchPar, 2)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewThresholding(benchPar, th, nil, urng.NewTaus88(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Noise(5)
	}
}

// BenchmarkNoiseResampling measures the resampling guard per report
// (worst case: extreme input).
func BenchmarkNoiseResampling(b *testing.B) {
	th, err := core.ResamplingThreshold(benchPar, 2)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewResampling(benchPar, th, nil, urng.NewTaus88(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Noise(10)
	}
}

// BenchmarkExactPMF measures the closed-form RNG distribution
// materialization the analyzer builds on.
func BenchmarkExactPMF(b *testing.B) {
	d := laplace.NewDist(benchPar.FxP())
	for i := 0; i < b.N; i++ {
		d.PMF()
	}
}

// benchParLarge is the wide-grid analyzer geometry: a 512-step
// sensor grid on a B_y = 16 output word, where the certification
// scan's asymptotics dominate construction.
var benchParLarge = core.Params{Lo: 0, Hi: 20, Eps: 0.5, Bu: 20, By: 16, Delta: 20.0 / 512}

// BenchmarkAnalyzerBuild measures analyzer construction alone — the
// full PMF materialization plus prefix sums. Certification is
// measured separately (BenchmarkAnalyzerCertify) so kernel changes
// are visible in isolation.
func BenchmarkAnalyzerBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.NewAnalyzer(benchPar)
	}
}

// BenchmarkAnalyzerCachedBuild measures the same construction through
// the process-wide analyzer cache (steady state: all hits).
func BenchmarkAnalyzerCachedBuild(b *testing.B) {
	core.ResetAnalyzerCache()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.CachedAnalyzer(benchPar)
	}
}

// BenchmarkAnalyzerCertify measures one exact certification of the
// thresholding mechanism, construction excluded.
func BenchmarkAnalyzerCertify(b *testing.B) {
	th, err := core.ThresholdingThreshold(benchPar, 2)
	if err != nil {
		b.Fatal(err)
	}
	an := core.NewAnalyzer(benchPar)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := an.ThresholdingLoss(th); rep.Infinite {
			b.Fatal("certification failed")
		}
	}
}

// BenchmarkAnalyzerCertifyLarge is BenchmarkAnalyzerCertify on the
// wide grid, where the sliding-window kernel's linear asymptotics
// (vs the legacy quadratic scan) carry the speedup.
func BenchmarkAnalyzerCertifyLarge(b *testing.B) {
	th, err := core.ThresholdingThreshold(benchParLarge, 2)
	if err != nil {
		b.Fatal(err)
	}
	an := core.NewAnalyzer(benchParLarge)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := an.ThresholdingLoss(th); rep.Infinite {
			b.Fatal("certification failed")
		}
	}
}

// BenchmarkAnalyzerProfile measures the full Fig. 8 loss profile
// derivation (one sliding-window sweep per call).
func BenchmarkAnalyzerProfile(b *testing.B) {
	th, err := core.ThresholdingThreshold(benchPar, 2)
	if err != nil {
		b.Fatal(err)
	}
	an := core.NewAnalyzer(benchPar)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an.ThresholdingLossProfile(th)
	}
}

// BenchmarkThresholdClosedForm measures the eq. 13/15 calculators.
func BenchmarkThresholdClosedForm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.ThresholdingThreshold(benchPar, 2); err != nil {
			b.Fatal(err)
		}
		if _, err := core.ResamplingThreshold(benchPar, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPBoxTransaction measures one full hardware noising
// transaction through the cycle-level simulator.
func BenchmarkDPBoxTransaction(b *testing.B) {
	box, err := NewDPBox(DPBoxConfig{})
	if err != nil {
		b.Fatal(err)
	}
	if err := box.Initialize(1e12, 0); err != nil {
		b.Fatal(err)
	}
	if err := box.Configure(1, 0, 32); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := box.NoiseValue(16); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDPBoxFaultHooks is the fault-hook overhead guard shared by the
// two benchmarks below: identical transactions, with and without a
// (quiescent) fault plane installed. The hook contract is zero
// allocations and within ~2% on time/op; compare the two outputs.
func benchDPBoxFaultHooks(b *testing.B, withPlane bool) {
	cfg := DPBoxConfig{}
	if withPlane {
		cfg.Faults = fault.NewPlane()
	}
	box, err := NewDPBox(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := box.Initialize(1e12, 0); err != nil {
		b.Fatal(err)
	}
	if err := box.Configure(1, 0, 32); err != nil {
		b.Fatal(err)
	}
	if _, err := box.NoiseValue(16); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := box.NoiseValue(16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPBoxNoHooks is the no-fault-plane baseline.
func BenchmarkDPBoxNoHooks(b *testing.B) { benchDPBoxFaultHooks(b, false) }

// BenchmarkDPBoxIdleFaultPlane has an installed but empty fault
// plane: the wrappers are live, the injectors nil.
func BenchmarkDPBoxIdleFaultPlane(b *testing.B) { benchDPBoxFaultHooks(b, true) }

// benchDPBoxObs is the telemetry-hook overhead guard: identical
// transactions with the plane detached (nil Metrics — the production
// default) and attached. The disabled path's contract is zero
// allocations and within ~2% on time/op of BenchmarkDPBoxNoHooks.
func benchDPBoxObs(b *testing.B, enabled bool) {
	cfg := DPBoxConfig{}
	if enabled {
		cfg.Obs = NewDPBoxMetrics(NewObsRegistry(), 1)
	}
	box, err := NewDPBox(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := box.Initialize(1e12, 0); err != nil {
		b.Fatal(err)
	}
	if err := box.Configure(1, 0, 32); err != nil {
		b.Fatal(err)
	}
	if _, err := box.NoiseValue(16); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := box.NoiseValue(16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPBoxObsDisabled is the nil-plane noise hot path; CI pins
// it at 0 allocs/op.
func BenchmarkDPBoxObsDisabled(b *testing.B) { benchDPBoxObs(b, false) }

// BenchmarkDPBoxObsEnabled has the full plane attached (counters,
// odometer, trace ring) for comparison.
func BenchmarkDPBoxObsEnabled(b *testing.B) { benchDPBoxObs(b, true) }

// benchReportSpan is the flight-recorder overhead guard: one full
// report span (noised → journal → tx → link-rx → admit → ack) per
// iteration, stamped against a nil recorder (the production default)
// or a live ring. The disabled path's contract is zero allocations;
// the enabled path must also stay allocation-free — the ring is
// fixed-capacity and pooled by construction.
func benchReportSpan(b *testing.B, enabled bool) {
	var fr *obs.FlightRecorder
	if enabled {
		fr = obs.NewFlightRecorder(1024)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i) % 512
		fr.Record(1, seq, obs.StageNoised)
		fr.Record(1, seq, obs.StageJournal)
		fr.Record(1, seq, obs.StageTx)
		fr.Record(1, seq, obs.StageLinkRx)
		fr.Record(1, seq, obs.StageAdmit)
		fr.Record(1, seq, obs.StageAck)
	}
}

// BenchmarkReportSpanDisabled is the nil-recorder span hot path; CI
// pins it at 0 allocs/op.
func BenchmarkReportSpanDisabled(b *testing.B) { benchReportSpan(b, false) }

// BenchmarkReportSpanEnabled stamps against a live 1024-slot ring.
func BenchmarkReportSpanEnabled(b *testing.B) { benchReportSpan(b, true) }

// BenchmarkMSP430SoftNoise measures the emulated software noising
// routine (thousands of emulated cycles per call).
func BenchmarkMSP430SoftNoise(b *testing.B) {
	n, err := msp430.NewSoftNoiser(msp430.FixedPoint20, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := n.Noise(100, 64, -3000, 3000); err != nil {
			b.Fatal(err)
		}
	}
}
