package ulpdp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ulpdp/internal/msp430"
)

var par = Params{Lo: 0, Hi: 10, Eps: 0.5, Bu: 17, By: 12, Delta: 10.0 / 32}

func TestConstructorsValidate(t *testing.T) {
	bad := Params{Lo: 1, Hi: 0, Eps: 1, Bu: 10, By: 10, Delta: 0.1}
	if _, err := NewIdealLaplace(bad, 1); err == nil {
		t.Error("ideal accepted bad params")
	}
	if _, err := NewBaseline(bad, 1); err == nil {
		t.Error("baseline accepted bad params")
	}
	if _, err := NewResampling(bad, 2, 1); err == nil {
		t.Error("resampling accepted bad params")
	}
	if _, err := NewThresholding(bad, 2, 1); err == nil {
		t.Error("thresholding accepted bad params")
	}
	if _, err := NewRandomizedResponse(bad, 1); err == nil {
		t.Error("rr accepted bad params")
	}
	if _, err := CertifyBaseline(bad); err == nil {
		t.Error("certify accepted bad params")
	}
	if _, err := NewFxPDist(bad); err == nil {
		t.Error("dist accepted bad params")
	}
}

func TestEndToEndPrivacyStory(t *testing.T) {
	// The paper's narrative through the public API: the baseline
	// leaks, the guards are certified, both noising paths work.
	rep, err := CertifyBaseline(par)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Infinite {
		t.Fatal("baseline should have infinite loss")
	}

	th, err := ThresholdingThreshold(par, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = CertifyThresholding(par, th)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Bounded(2 * par.Eps) {
		t.Fatalf("thresholding not certified: %+v", rep)
	}

	rth, err := ResamplingThreshold(par, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = CertifyResampling(par, rth)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Bounded(2 * par.Eps) {
		t.Fatalf("resampling not certified: %+v", rep)
	}

	for _, mk := range []func() (Mechanism, error){
		func() (Mechanism, error) { return NewIdealLaplace(par, 1) },
		func() (Mechanism, error) { return NewBaseline(par, 1) },
		func() (Mechanism, error) { return NewResampling(par, 2, 1) },
		func() (Mechanism, error) { return NewThresholding(par, 2, 1) },
	} {
		m, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const n = 5000
		for i := 0; i < n; i++ {
			sum += m.Noise(5).Value
		}
		if mean := sum / n; math.Abs(mean-5) > 2 {
			t.Errorf("%s: mean of noised 5 = %g", m.Name(), mean)
		}
	}
}

func TestRandomizedResponseAPI(t *testing.T) {
	p := Params{Lo: 0, Hi: 1, Eps: 1, Bu: 16, By: 12, Delta: 1.0 / 16}
	rr, err := NewRandomizedResponse(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	v := rr.Noise(0.2).Value
	if v != 0 && v != 1 {
		t.Errorf("rr output %g", v)
	}
	if eps := rr.RREpsilon(); eps <= 0 {
		t.Errorf("rr epsilon %g", eps)
	}
}

func TestBudgetAPI(t *testing.T) {
	b, err := NewBudget(par, BudgetConfig{Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := b.Request(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Charged <= 0 {
		t.Error("first request should charge")
	}
}

func TestDPBoxAPI(t *testing.T) {
	box, err := NewDPBox(DPBoxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := box.Initialize(100, 0); err != nil {
		t.Fatal(err)
	}
	if err := box.Configure(1, 0, 32); err != nil {
		t.Fatal(err)
	}
	r, err := box.NoiseValue(16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 2 {
		t.Errorf("latency %d", r.Cycles)
	}
}

func TestDatasetsAPI(t *testing.T) {
	if len(Datasets()) != 7 {
		t.Error("seven datasets expected")
	}
	m, err := DatasetByName("Auto-MPG")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Generate(1)) != m.Entries {
		t.Error("generate length mismatch")
	}
}

func TestSynthesizeAPI(t *testing.T) {
	rep, err := Synthesize(BaselineHardware(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gates != 10431 {
		t.Errorf("gates %d", rep.Gates)
	}
}

func TestSoftNoiserAPI(t *testing.T) {
	n, err := NewSoftNoiser(msp430.FixedPoint20, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, cycles, err := n.Noise(10, 64, -3000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if cycles < 100 {
		t.Errorf("software noising in %d cycles is implausible", cycles)
	}
}

func TestBankAPI(t *testing.T) {
	bank, err := NewBank(DPBoxConfig{Bu: 12, By: 10, Mult: 2}, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := bank.Initialize(5, 0); err != nil {
		t.Fatal(err)
	}
	if err := bank.Box(0).Configure(1, 0, 16); err != nil {
		t.Fatal(err)
	}
	r, err := bank.Box(0).NoiseValue(8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Charged <= 0 {
		t.Error("bank channel did not charge")
	}
	if bank.BudgetRemaining() >= 5 {
		t.Error("shared budget untouched")
	}
}

func TestConstantTimeAPI(t *testing.T) {
	p := Params{Lo: 0, Hi: 8, Eps: 0.5, Bu: 12, By: 10, Delta: 0.5}
	m, err := NewConstantTime(p, 2, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Noise(4).Resamples != 0 {
		t.Error("constant time must not report resamples")
	}
	ct, ok := m.(interface{ Threshold() int64 })
	if !ok {
		t.Fatal("missing threshold accessor")
	}
	rep, err := CertifyConstantTime(p, ct.Threshold(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Bounded(2 * p.Eps) {
		t.Errorf("constant-time not certified: %+v", rep)
	}
	bad := p
	bad.Eps = -1
	if _, err := NewConstantTime(bad, 2, 4, 1); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := CertifyConstantTime(bad, 5, 4); err == nil {
		t.Error("bad params accepted (certify)")
	}
}

func TestFamilyAPI(t *testing.T) {
	geo := NoiseGeometry{Bu: 12, By: 10, Delta: 0.5}
	d, err := NewFamilyDist(StaircaseFamily{Eps: 0.5, D: 8, Gamma: 0.4}, geo)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Lo: 0, Hi: 8, Eps: 0.5, Bu: geo.Bu, By: geo.By, Delta: geo.Delta}
	rep, err := CertifyFamilyBaseline(p, d)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Infinite {
		t.Error("naive staircase should leak")
	}
	if _, err := CertifyFamilyThresholding(p, d, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFamilyDist(LaplaceFamily{Lambda: 1}, NoiseGeometry{}); err == nil {
		t.Error("invalid geometry accepted")
	}
	bad := p
	bad.Eps = 0
	if _, err := CertifyFamilyBaseline(bad, d); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := CertifyFamilyThresholding(bad, d, 30); err == nil {
		t.Error("bad params accepted (thresholding)")
	}
}

func TestCertifyWrapperValidation(t *testing.T) {
	bad := Params{Lo: 1, Hi: 0, Eps: 1, Bu: 10, By: 10, Delta: 0.1}
	if _, err := CertifyThresholding(bad, 5); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := CertifyResampling(bad, 5); err == nil {
		t.Error("bad params accepted")
	}
}

func TestRunAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite takes a few seconds")
	}
	var buf bytes.Buffer
	cfg := QuickExperiments()
	if err := RunAllExperiments(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
	if DefaultExperiments().Trials <= cfg.Trials {
		t.Error("default config should be larger than quick")
	}
}

func TestExperimentAPI(t *testing.T) {
	names := ExperimentNames()
	if len(names) != 23 {
		t.Fatalf("%d experiments", len(names))
	}
	var buf bytes.Buffer
	if err := RunExperiment("fig4", QuickExperiments(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Error("fig4 output missing header")
	}
	err := RunExperiment("nope", QuickExperiments(), &buf)
	if err == nil {
		t.Fatal("unknown experiment should error")
	}
	var unknown *UnknownExperimentError
	if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error %v should name the experiment", err)
	}
	_ = unknown
}
