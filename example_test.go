package ulpdp_test

import (
	"fmt"

	"ulpdp"
)

// The core workflow: prove the naive fixed-point mechanism leaks,
// compute a certified guard, and noise a reading.
func Example() {
	par := ulpdp.Params{Lo: 0, Hi: 10, Eps: 0.5, Bu: 17, By: 12, Delta: 10.0 / 32}

	naive, _ := ulpdp.CertifyBaseline(par)
	fmt.Println("naive loss infinite:", naive.Infinite)

	th, _ := ulpdp.ThresholdingThreshold(par, 2)
	cert, _ := ulpdp.CertifyThresholding(par, th)
	fmt.Println("guarded loss bounded by 2ε:", cert.Bounded(2*par.Eps))

	// Output:
	// naive loss infinite: true
	// guarded loss bounded by 2ε: true
}

// Driving the DP-Box hardware simulator the way firmware would.
func ExampleNewDPBox() {
	box, _ := ulpdp.NewDPBox(ulpdp.DPBoxConfig{Bu: 17, By: 14, Mult: 2})
	// Boot: 50 nats of budget, no replenishment.
	if err := box.Initialize(50, 0); err != nil {
		panic(err)
	}
	// ε = 2^-1 = 0.5, sensor range 0..256 steps.
	if err := box.Configure(1, 0, 256); err != nil {
		panic(err)
	}
	r, _ := box.NoiseValue(128)
	fmt.Println("cycles:", r.Cycles)
	fmt.Println("charged something:", r.Charged > 0)
	// Output:
	// cycles: 2
	// charged something: true
}

// The exact fixed-point RNG distribution behind the analysis.
func ExampleNewFxPDist() {
	par := ulpdp.Params{Lo: 0, Hi: 10, Eps: 0.5, Bu: 17, By: 12, Delta: 10.0 / 32}
	d, _ := ulpdp.NewFxPDist(par)
	_, hasHoles := d.FirstZeroHole()
	fmt.Println("tail has zero-probability holes:", hasHoles)
	fmt.Printf("max representable noise: %.1f\n", d.Params().MaxNoise())
	// Output:
	// tail has zero-probability holes: true
	// max representable noise: 235.7
}

// Randomized response: the categorical mode of Section VI-E.
func ExampleNewRandomizedResponse() {
	par := ulpdp.Params{Lo: 0, Hi: 1, Eps: 1, Bu: 17, By: 14, Delta: 1.0 / 64}
	rr, _ := ulpdp.NewRandomizedResponse(par, 7)
	v := rr.Noise(1).Value
	fmt.Println("binary output:", v == 0 || v == 1)
	fmt.Println("positive effective epsilon:", rr.RREpsilon() > 0)
	// Output:
	// binary output: true
	// positive effective epsilon: true
}

// Certifying a non-Laplace noise family (the Section III-A4
// generalization): the Gaussian mechanism has the same pathology.
func ExampleCertifyFamilyBaseline() {
	geo := ulpdp.NoiseGeometry{Bu: 14, By: 12, Delta: 0.25}
	dist, _ := ulpdp.NewFamilyDist(ulpdp.GaussianFamily{Sigma: 12}, geo)
	par := ulpdp.Params{Lo: 0, Hi: 8, Eps: 0.5, Bu: geo.Bu, By: geo.By, Delta: geo.Delta}
	rep, _ := ulpdp.CertifyFamilyBaseline(par, dist)
	fmt.Println("naive Gaussian mechanism leaks:", rep.Infinite)
	// Output:
	// naive Gaussian mechanism leaks: true
}
