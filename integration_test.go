package ulpdp_test

import (
	"math"
	"testing"

	"ulpdp"
)

// TestFleetScenario is the end-to-end story the paper motivates: a
// fleet of ULP nodes, each carrying a DP-Box, streams private
// readings to an untrusted aggregator; the aggregator recovers the
// population mean while every report is individually certified ε-LDP
// and each node's budget ledger holds.
func TestFleetScenario(t *testing.T) {
	meta, err := ulpdp.DatasetByName("Statlog (Heart)")
	if err != nil {
		t.Fatal(err)
	}
	const nodes = 40
	const readingsPerNode = 100
	values := meta.GenerateN(nodes*readingsPerNode, 99)

	// Per-node DP-Box geometry: 256-step grid at ε = 0.5 per report.
	const gridSteps = 256
	step := meta.Range() / gridSteps
	loSteps := int64(math.Round(meta.Min / step))

	var trueSum, reportedSum float64
	var chargeTotal float64
	reports := 0
	for n := 0; n < nodes; n++ {
		bank, err := ulpdp.NewBank(ulpdp.DPBoxConfig{Bu: 17, By: 14, Mult: 2}, 1, uint64(n)*31+7)
		if err != nil {
			t.Fatal(err)
		}
		if err := bank.Initialize(80, 0); err != nil {
			t.Fatal(err)
		}
		box := bank.Box(0)
		if err := box.Configure(1, loSteps, loSteps+gridSteps); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < readingsPerNode; i++ {
			v := values[n*readingsPerNode+i]
			r, err := box.NoiseValue(int64(math.Round(v / step)))
			if err != nil {
				t.Fatal(err)
			}
			if r.FromCache {
				t.Fatalf("node %d exhausted its budget unexpectedly", n)
			}
			if r.Charged <= 0 || r.Charged > 2*0.5+1e-9 {
				t.Fatalf("node %d charged %g", n, r.Charged)
			}
			chargeTotal += r.Charged
			trueSum += v
			reportedSum += float64(r.Value) * step
			reports++
		}
		if box.BudgetRemaining() <= 0 {
			t.Fatalf("node %d budget fully drained by %d readings", n, readingsPerNode)
		}
	}

	trueMean := trueSum / float64(reports)
	estMean := reportedSum / float64(reports)
	// Std of the mean ≈ λ·sqrt(2)/sqrt(N) = 212·1.41/63 ≈ 4.7 mmHg.
	if math.Abs(estMean-trueMean) > 15 {
		t.Errorf("fleet mean estimate %g vs true %g", estMean, trueMean)
	}
	// With λ = 2d most noised outputs land beyond the sensor range,
	// so the average charge sits between ε and the first band — but
	// adaptive charging keeps it clearly below the flat worst case
	// (2ε = 1.0 nat), which is Algorithm 1's payoff.
	avgCharge := chargeTotal / float64(reports)
	if avgCharge >= 2*0.5 {
		t.Errorf("average charge %g at or above the flat worst case", avgCharge)
	}
	if avgCharge > 1.5*0.5 {
		t.Errorf("average charge %g above the first band", avgCharge)
	}
	t.Logf("%d nodes × %d readings: true mean %.2f, estimated %.2f, avg charge %.3f nats",
		nodes, readingsPerNode, trueMean, estMean, avgCharge)
}

// TestFleetCertificationOnce proves the fleet's shared configuration
// is certified once and covers every node: the exact analyzer verdict
// depends only on the parameters, not the data.
func TestFleetCertificationOnce(t *testing.T) {
	meta, err := ulpdp.DatasetByName("Statlog (Heart)")
	if err != nil {
		t.Fatal(err)
	}
	par := ulpdp.Params{
		Lo: meta.Min, Hi: meta.Max, Eps: 0.5,
		Bu: 17, By: 14, Delta: meta.Range() / 256,
	}
	th, err := ulpdp.ThresholdingThreshold(par, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ulpdp.CertifyThresholding(par, th)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Bounded(2 * par.Eps) {
		t.Fatalf("fleet configuration not certified: %+v", rep)
	}
	// And the naive configuration would not be shippable.
	naive, err := ulpdp.CertifyBaseline(par)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Infinite {
		t.Error("baseline unexpectedly certified")
	}
}

// TestMechanismFleetMatchesHardwareFleet cross-checks the two
// noising paths at fleet scale: the algorithmic mechanism and the
// cycle-level DP-Box produce statistically indistinguishable
// aggregates under the same parameters.
func TestMechanismFleetMatchesHardwareFleet(t *testing.T) {
	meta, err := ulpdp.DatasetByName("Auto-MPG")
	if err != nil {
		t.Fatal(err)
	}
	data := meta.GenerateN(3000, 1)
	par := ulpdp.Params{Lo: meta.Min, Hi: meta.Max, Eps: 0.5, Bu: 17, By: 14, Delta: meta.Range() / 256}
	mech, err := ulpdp.NewThresholding(par, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	var mechSum float64
	for _, v := range data {
		mechSum += mech.Noise(v).Value
	}

	bank, err := ulpdp.NewBank(ulpdp.DPBoxConfig{Bu: 17, By: 14, Mult: 2}, 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	if err := bank.Initialize(1e6, 0); err != nil {
		t.Fatal(err)
	}
	box := bank.Box(0)
	step := par.Delta
	loSteps := int64(math.Round(par.Lo / step))
	if err := box.Configure(1, loSteps, loSteps+256); err != nil {
		t.Fatal(err)
	}
	var hwSum float64
	for _, v := range data {
		r, err := box.NoiseValue(int64(math.Round(v / step)))
		if err != nil {
			t.Fatal(err)
		}
		hwSum += float64(r.Value) * step
	}
	n := float64(len(data))
	// Both means sit near the truth; their gap is within a few
	// standard errors of the noise (λ·sqrt(2)/sqrt(n) ≈ 1.9).
	if math.Abs(mechSum/n-hwSum/n) > 8 {
		t.Errorf("mechanism mean %g vs hardware mean %g", mechSum/n, hwSum/n)
	}
}
