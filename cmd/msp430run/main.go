// Command msp430run executes the Section III-D software noising
// routines on the MSP430 emulator and reports their cycle costs next
// to the DP-Box hardware numbers.
//
// Usage:
//
//	msp430run [-n N] [-seed N] [-lambda N]
package main

import (
	"flag"
	"fmt"
	"os"

	"ulpdp"
	"ulpdp/internal/msp430"
)

func main() {
	n := flag.Int("n", 1000, "noising transactions per routine")
	seed := flag.Uint64("seed", 1, "software RNG seed")
	lambda := flag.Int("lambda", 64, "noise scale λ in steps")
	flag.Parse()

	fmt.Printf("%-34s %12s %12s\n", "routine", "avg cycles", "vs DP-Box")
	for _, prec := range []msp430.Precision{msp430.FixedPoint20, msp430.HalfPrecision} {
		noiser, err := ulpdp.NewSoftNoiser(prec, *seed)
		if err != nil {
			fatal(err)
		}
		var total uint64
		for i := 0; i < *n; i++ {
			_, cycles, err := noiser.Noise(100, uint16(*lambda), -30000, 30000)
			if err != nil {
				fatal(err)
			}
			total += cycles
		}
		avg := float64(total) / float64(*n)
		fmt.Printf("%-34s %12.1f %11.0fx\n", "MSP430 "+prec.String(), avg, avg/4)
	}
	fmt.Printf("%-34s %12.1f %12s\n", "DP-Box (incl. MCU write/read)", 4.0, "1x")
	fmt.Println("\n(paper: 4043 cycles fixed point, 1436 half precision, 4 hardware)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msp430run:", err)
	os.Exit(1)
}
