// Command dpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dpbench [-quick] [-seed N] [-trials N] [-max N] [-list] [exhibit ...]
//
// With no exhibit arguments every exhibit runs. Exhibit names follow
// the paper: fig4 fig6 fig7 fig8 fig11 fig12 fig13 fig14 fig15
// table1..table6 sec3d sec5.
//
// `dpbench -benchjson DIR` instead runs the analyzer and noising
// micro-benchmarks and writes BENCH_analyzer.json / BENCH_noise.json
// into DIR, for perf-regression tracking across changes.
package main

import (
	"flag"
	"fmt"
	"os"

	"ulpdp"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sizes (seconds instead of minutes)")
	seed := flag.Uint64("seed", 0, "override the experiment seed")
	trials := flag.Int("trials", 0, "override the per-cell trial count")
	maxEntries := flag.Int("max", 0, "override the per-dataset entry cap")
	list := flag.Bool("list", false, "list exhibit names and exit")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
	dataDir := flag.String("data", "", "directory of real dataset CSVs (see cmd/datagen for the format)")
	benchDir := flag.String("benchjson", "", "run micro-benchmarks and write BENCH_*.json into this directory, then exit")
	flag.Parse()

	if *benchDir != "" {
		if err := writeBenchJSON(*benchDir); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, n := range ulpdp.ExperimentNames() {
			fmt.Println(n)
		}
		return
	}

	cfg := ulpdp.DefaultExperiments()
	if *quick {
		cfg = ulpdp.QuickExperiments()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *trials != 0 {
		cfg.Trials = *trials
	}
	if *maxEntries != 0 {
		cfg.MaxEntries = *maxEntries
	}
	cfg.DataDir = *dataDir

	args := flag.Args()
	if len(args) == 0 {
		if *jsonOut {
			args = ulpdp.ExperimentNames()
		} else {
			if err := ulpdp.RunAllExperiments(cfg, os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
	}
	for _, name := range args {
		if *jsonOut {
			if err := ulpdp.RunExperimentJSON(name, cfg, os.Stdout); err != nil {
				fatal(err)
			}
			continue
		}
		fmt.Printf("==== %s ====\n", name)
		if err := ulpdp.RunExperiment(name, cfg, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpbench:", err)
	os.Exit(1)
}
