// Benchmark-regression tooling: `dpbench -benchjson DIR` runs the
// analyzer, noising, and fleet-datapath benchmarks through
// testing.Benchmark and writes machine-readable BENCH_analyzer.json,
// BENCH_noise.json, and BENCH_fleet.json files, giving future changes
// a perf trajectory to compare against:
//
//	dpbench -benchjson .            # writes ./BENCH_*.json
//	jq '.benchmarks[].ns_per_op' BENCH_fleet.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"ulpdp/internal/collector"
	"ulpdp/internal/core"
	"ulpdp/internal/fault"
	"ulpdp/internal/fleet"
	"ulpdp/internal/laplace"
	"ulpdp/internal/transport"
	"ulpdp/internal/urng"
)

// benchPar mirrors the root bench_test.go micro-benchmark geometry;
// benchParLarge is the wide-grid analyzer geometry.
var (
	benchPar      = core.Params{Lo: 0, Hi: 10, Eps: 0.5, Bu: 17, By: 12, Delta: 10.0 / 32}
	benchParLarge = core.Params{Lo: 0, Hi: 20, Eps: 0.5, Bu: 20, By: 16, Delta: 20.0 / 512}
)

// BenchResult is one benchmark measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchFile is the on-disk schema of one BENCH_*.json file.
type BenchFile struct {
	Suite      string        `json:"suite"`
	GoVersion  string        `json:"go_version"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

func analyzerBenches() []namedBench {
	thDefault, err := core.ThresholdingThreshold(benchPar, 2)
	if err != nil {
		panic(err)
	}
	thLarge, err := core.ThresholdingThreshold(benchParLarge, 2)
	if err != nil {
		panic(err)
	}
	anDefault := core.NewAnalyzer(benchPar)
	anLarge := core.NewAnalyzer(benchParLarge)
	return []namedBench{
		{"AnalyzerBuild", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.NewAnalyzer(benchPar)
			}
		}},
		{"AnalyzerCachedBuild", func(b *testing.B) {
			core.ResetAnalyzerCache()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.CachedAnalyzer(benchPar)
			}
		}},
		{"AnalyzerCertify", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if rep := anDefault.ThresholdingLoss(thDefault); rep.Infinite {
					b.Fatal("certification failed")
				}
			}
		}},
		{"AnalyzerCertifyLarge", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if rep := anLarge.ThresholdingLoss(thLarge); rep.Infinite {
					b.Fatal("certification failed")
				}
			}
		}},
		{"AnalyzerCertifyResampling", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if rep := anDefault.ResamplingLoss(thDefault); rep.Infinite {
					b.Fatal("certification failed")
				}
			}
		}},
		{"AnalyzerProfile", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				anDefault.ThresholdingLossProfile(thDefault)
			}
		}},
		{"AnalyzerSegments", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				anDefault.Segments(thDefault, []float64{1.25, 1.5, 1.75})
			}
		}},
		{"ExactPMF", func(b *testing.B) {
			d := laplace.NewDist(benchPar.FxP())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.PMF()
			}
		}},
	}
}

func noiseBenches() []namedBench {
	thT, err := core.ThresholdingThreshold(benchPar, 2)
	if err != nil {
		panic(err)
	}
	thR, err := core.ResamplingThreshold(benchPar, 2)
	if err != nil {
		panic(err)
	}
	return []namedBench{
		{"NoiseIdeal", func(b *testing.B) {
			m, err := core.NewIdealLaplace(benchPar, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Noise(5)
			}
		}},
		{"NoiseBaselineCordic", func(b *testing.B) {
			m, err := core.NewBaseline(benchPar, nil, urng.NewTaus88(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Noise(5)
			}
		}},
		{"NoiseThresholding", func(b *testing.B) {
			m, err := core.NewThresholding(benchPar, thT, nil, urng.NewTaus88(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Noise(5)
			}
		}},
		{"NoiseResampling", func(b *testing.B) {
			m, err := core.NewResampling(benchPar, thR, nil, urng.NewTaus88(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Noise(10)
			}
		}},
	}
}

// fleetBenches measures the fleet datapath: raw sharded-collector
// ingest at 1k attached nodes (the ISSUE's ≥10×-over-single-processor
// scale point), and complete end-to-end fleet runs, lossless and
// under chaos.
func fleetBenches() []namedBench {
	return []namedBench{
		{"CollectorIngest1k", func(b *testing.B) {
			const nodes, inFlight = 1024, 4096
			col := collector.New(collector.Config{
				BreakerThreshold: 1 << 30,
				PollTimeout:      time.Hour,
			})
			defer col.Close()
			ends := make([]*transport.Endpoint, nodes)
			for i := 0; i < nodes; i++ {
				link := transport.NewLink(transport.LinkConfig{QueueCap: 256})
				if err := col.Attach(transport.NodeID(i), link.CollectorEnd()); err != nil {
					b.Fatal(err)
				}
				ends[i] = link.NodeEnd()
			}
			seqs := make([]uint64, nodes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := i % nodes
				ends[n].Send(transport.Packet{
					Kind: transport.KindReport, Node: transport.NodeID(n),
					Seq: seqs[n], Value: int64(i),
				})
				seqs[n]++
				for {
					if _, ok := ends[n].TryRecv(); !ok {
						break
					}
				}
				if (i+1)%inFlight == 0 {
					for col.Stats().Accepted+inFlight < uint64(i+1) {
						runtime.Gosched()
					}
				}
			}
			for col.Stats().Accepted < uint64(b.N) {
				runtime.Gosched()
			}
		}},
		{"FleetLossless256", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := fleet.Run(fleet.Config{
					Nodes: 256, Reports: 4, Seed: 42,
					BreakerThreshold: 1 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Violations) != 0 {
					b.Fatalf("violations: %v", res.Violations)
				}
			}
		}},
		{"FleetChaos256", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := fleet.Run(fleet.Config{
					Nodes: 256, Reports: 4, Seed: 42,
					BreakerThreshold: 1 << 20,
					Link:             fault.LinkProfile{Drop: 0.2, Duplicate: 0.1, Reorder: 0.1, MaxDelay: 2},
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Violations) != 0 {
					b.Fatalf("violations: %v", res.Violations)
				}
			}
		}},
	}
}

func runSuite(suite string, benches []namedBench) BenchFile {
	out := BenchFile{
		Suite:     suite,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, nb := range benches {
		r := testing.Benchmark(nb.fn)
		out.Benchmarks = append(out.Benchmarks, BenchResult{
			Name:        nb.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "bench %-26s %12.1f ns/op (%d iters)\n",
			nb.name, float64(r.T.Nanoseconds())/float64(r.N), r.N)
	}
	return out
}

// writeBenchJSON runs the micro-benchmark suites and writes
// BENCH_analyzer.json, BENCH_noise.json, and BENCH_fleet.json into
// dir.
func writeBenchJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	suites := map[string]BenchFile{
		"BENCH_analyzer.json": runSuite("analyzer", analyzerBenches()),
		"BENCH_noise.json":    runSuite("noise", noiseBenches()),
		"BENCH_fleet.json":    runSuite("fleet", fleetBenches()),
	}
	for name, f := range suites {
		buf, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", path)
	}
	return nil
}
