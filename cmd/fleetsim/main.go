// Command fleetsim runs the fleet chaos harness from the command
// line: N journaled DP-Box nodes report through seeded lossy links to
// one collector, optionally crash-recovering on a schedule, and the
// run is checked against the two fleet invariants — exactly-once
// noising accounting, and bit-exact convergence to the lossless
// same-seed baseline. Any violation exits non-zero, so CI can sweep
// seeds.
//
// Usage:
//
//	fleetsim [-quick] [-nodes N] [-reports N] [-seed N]
//	         [-drop P] [-dup P] [-reorder P] [-corrupt P] [-maxdelay N]
//	         [-crash-every N] [-collectorcrash W1,W2,...] [-durable]
//	         [-workers N] [-shards N] [-deadline D]
//	         [-metrics] [-debug ADDR] [-v]
//
// -durable runs the collector on a durable checkpoint store, and
// -collectorcrash (which implies -durable) kills the store's power at
// each listed cumulative checkpoint word-write count: the harness then
// recovers the collector from its shard checkpoints mid-run, and the
// invariants must hold across the restarts.
//
// -quick is the CI smoke preset: a small fleet under a filthy link
// with node crash-recovery every second report and one mid-run
// collector crash. It only fills in flags the command line left at
// their defaults, so it composes with explicit overrides — `fleetsim
// -quick -nodes 10000` is the scale smoke: the quick chaos profile
// over ten thousand nodes.
//
// -metrics attaches the telemetry plane to the chaos run — the
// privacy odometer is then asserted live against the certified n·ε
// envelope — and prints the final JSON snapshot to stdout. -debug
// additionally serves the registry on /debug/vars plus net/http/pprof
// at ADDR, and keeps the process alive after the run for inspection.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"

	"ulpdp/internal/fault"
	"ulpdp/internal/fleet"
	"ulpdp/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "CI smoke preset (small fleet, filthy link, crashes)")
	nodes := flag.Int("nodes", 8, "fleet size")
	reports := flag.Int("reports", 8, "reports per node")
	seed := flag.Uint64("seed", 1, "master seed (URNG streams, link schedules, jitter)")
	drop := flag.Float64("drop", 0.25, "per-frame drop probability")
	dup := flag.Float64("dup", 0.15, "per-frame duplication probability")
	reorder := flag.Float64("reorder", 0.15, "per-frame reorder probability")
	corrupt := flag.Float64("corrupt", 0.05, "per-frame corruption probability")
	maxDelay := flag.Int("maxdelay", 3, "max reorder holdback in frames")
	crashEvery := flag.Int("crash-every", 0, "crash-recover each node after every k-th report (0 = never)")
	durable := flag.Bool("durable", false, "run the collector on a durable checkpoint store")
	collectorCrash := flag.String("collectorcrash", "", "comma-separated checkpoint word-write counts at which the collector crashes and recovers (implies -durable)")
	workers := flag.Int("workers", 0, "node worker-pool size (0 = 8x GOMAXPROCS)")
	shards := flag.Int("shards", 0, "collector ingest shards (0 = GOMAXPROCS)")
	deadline := flag.Duration("deadline", 0, "wall-clock ceiling for each fleet run (0 = library default)")
	metrics := flag.Bool("metrics", false, "attach the telemetry plane to the chaos run and print its JSON snapshot")
	debugAddr := flag.String("debug", "", "serve /debug/vars (expvar) and /debug/pprof at this address; implies -metrics and blocks after the run")
	verbose := flag.Bool("v", false, "print per-node detail")
	flag.Parse()

	if *quick {
		// The preset only fills in flags the user didn't set, so
		// explicit overrides (e.g. -nodes 10000) survive it.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		preset := func(name string, p *int, v int) {
			if !set[name] {
				*p = v
			}
		}
		presetF := func(name string, p *float64, v float64) {
			if !set[name] {
				*p = v
			}
		}
		preset("nodes", nodes, 4)
		preset("reports", reports, 4)
		preset("crash-every", crashEvery, 2)
		preset("maxdelay", maxDelay, 3)
		presetF("drop", drop, 0.3)
		presetF("dup", dup, 0.2)
		presetF("reorder", reorder, 0.2)
		presetF("corrupt", corrupt, 0.1)
		if !set["collectorcrash"] {
			// One mid-run collector crash: word 100 lands inside the
			// admission WAL for any 4x4 fleet (16 admissions x 16
			// words), so the smoke exercises recovery every time.
			*collectorCrash = "100"
		}
	}

	crashSchedule, err := parseSchedule(*collectorCrash)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim: -collectorcrash:", err)
		return 2
	}

	cfg := fleet.Config{
		Nodes:            *nodes,
		Reports:          *reports,
		Seed:             *seed,
		CrashEvery:       *crashEvery,
		Workers:          *workers,
		Shards:           *shards,
		Deadline:         *deadline,
		Durable:          *durable || len(crashSchedule) > 0,
		CollectorCrashes: crashSchedule,
		Link: fault.LinkProfile{
			Drop: *drop, Duplicate: *dup, Reorder: *reorder,
			Corrupt: *corrupt, MaxDelay: *maxDelay,
		},
	}

	var reg *obs.Registry
	if *metrics || *debugAddr != "" {
		reg = obs.NewRegistry()
		cfg.Obs = reg
	}
	if *debugAddr != "" {
		reg.PublishExpvar("ulpdp")
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "fleetsim: debug server:", err)
			}
		}()
		fmt.Printf("fleetsim: serving /debug/vars and /debug/pprof on %s\n", *debugAddr)
	}

	fmt.Printf("fleetsim: %d nodes x %d reports, seed %d, link{drop %.2f dup %.2f reorder %.2f corrupt %.2f delay<=%d}, crash-every %d, durable %v, collector-crashes %v\n",
		cfg.Nodes, cfg.Reports, cfg.Seed, cfg.Link.Drop, cfg.Link.Duplicate,
		cfg.Link.Reorder, cfg.Link.Corrupt, cfg.Link.MaxDelay, cfg.CrashEvery,
		cfg.Durable, cfg.CollectorCrashes)

	chaos, err := fleet.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim: chaos run:", err)
		return 1
	}
	printRun("chaos", chaos, *verbose)

	lossless := cfg
	lossless.Link = fault.LinkProfile{}
	// The baseline is the reference: no link chaos and no collector
	// crashes (the chaos run with restarts must still converge to it).
	lossless.CollectorCrashes = nil
	// The baseline gets no plane: reusing the chaos run's registry
	// would double-charge the odometer channels.
	lossless.Obs = nil
	baseline, err := fleet.Run(lossless)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim: lossless baseline:", err)
		return 1
	}
	printRun("lossless", baseline, false)

	bad := 0
	for _, v := range chaos.Violations {
		fmt.Fprintln(os.Stderr, "fleetsim: invariant 1 (chaos):", v)
		bad++
	}
	for _, v := range baseline.Violations {
		fmt.Fprintln(os.Stderr, "fleetsim: invariant 1 (lossless):", v)
		bad++
	}
	for _, v := range fleet.CompareRuns(chaos, baseline) {
		fmt.Fprintln(os.Stderr, "fleetsim: invariant 2:", v)
		bad++
	}
	if chaos.Obs != nil {
		raw, jerr := json.MarshalIndent(chaos.Obs, "", "  ")
		if jerr != nil {
			fmt.Fprintln(os.Stderr, "fleetsim: snapshot:", jerr)
			return 1
		}
		fmt.Println(string(raw))
		if odo, ok := chaos.Obs.Odometers["budget.odometer"]; ok {
			fmt.Printf("fleetsim: odometer: %.6f nats spent across %d channels in %d charges\n",
				odo.TotalNats, len(odo.ChannelMicroNats), odo.Charges)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: FAIL: %d violation(s)\n", bad)
		return 1
	}
	fmt.Println("fleetsim: OK — exactly-once accounting held and the chaos run converged to the lossless baseline bit-exactly")
	if *debugAddr != "" {
		fmt.Println("fleetsim: run complete; debug server still up (Ctrl-C to exit)")
		select {}
	}
	return 0
}

// parseSchedule parses the -collectorcrash flag: a comma-separated,
// strictly ascending list of non-negative word-write counts.
func parseSchedule(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad word count %q: %v", p, err)
		}
		if w < 0 {
			return nil, fmt.Errorf("negative word count %d", w)
		}
		if len(out) > 0 && w <= out[len(out)-1] {
			return nil, fmt.Errorf("schedule must be strictly ascending at %d", w)
		}
		out = append(out, w)
	}
	return out, nil
}

func printRun(name string, r fleet.Result, verbose bool) {
	fmt.Printf("%s: aggregate %d reports over %d nodes, sum %d; link{sent %d dropped %d dup %d reordered %d corrupt %d overflow %d}; collector{accepted %d dup %d shed %d breaker-drops %d fail-closed %d recoveries %d checkpoint-words %d}\n",
		name, r.Aggregate.Reports, r.Aggregate.Nodes, r.Aggregate.Sum,
		r.Link.Sent, r.Link.Dropped, r.Link.Duplicated, r.Link.Reordered,
		r.Link.CorruptedInFlight, r.Link.Overflow,
		r.Collector.Accepted, r.Collector.Duplicates, r.Collector.Backpressure,
		r.Collector.BreakerDrops, r.Collector.FailClosed,
		r.CollectorRecoveries, r.CheckpointWords)
	if !verbose {
		return
	}
	for i, n := range r.Nodes {
		fmt.Printf("  node %d: %d recorded, %d journaled, spend %.3f nats, crashes %d, redeliveries %d\n",
			i, len(n.Recorded), len(n.Released), n.SpendNats, n.Crashes, n.Redeliveries)
	}
}
