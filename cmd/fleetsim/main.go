// Command fleetsim runs the fleet chaos harness from the command
// line: N journaled DP-Box nodes report through seeded lossy links to
// one collector, optionally crash-recovering on a schedule, and the
// run is checked against the two fleet invariants — exactly-once
// noising accounting, and bit-exact convergence to the lossless
// same-seed baseline. Any violation exits non-zero, so CI can sweep
// seeds.
//
// Usage:
//
//	fleetsim [-quick] [-nodes N] [-reports N] [-seed N]
//	         [-drop P] [-dup P] [-reorder P] [-corrupt P] [-maxdelay N]
//	         [-crash-every N] [-collectorcrash W1,W2,...] [-durable]
//	         [-nvmdir DIR] [-workers N] [-shards N] [-deadline D]
//	         [-metrics] [-debug ADDR] [-v]
//
// -durable runs the collector on a durable checkpoint store, and
// -collectorcrash (which implies -durable) kills the store's power at
// each listed cumulative checkpoint word-write count: the harness then
// recovers the collector from its shard checkpoints mid-run, and the
// invariants must hold across the restarts.
//
// -nvmdir backs the chaos run's durable state — the collector's
// checkpoint store and every node's budget journal — with file-based
// NVM under DIR (implies -durable for the chaos run). Killing the
// process mid-run and rerunning with the same DIR recovers every
// ledger and resumes delivery with exactly-once accounting over the
// union of both processes' reports; a resumed run skips the lossless
// baseline comparison, since it covers only the residual reports.
//
// -quick is the CI smoke preset: a small fleet under a filthy link
// with node crash-recovery every second report and one mid-run
// collector crash. It only fills in flags the command line left at
// their defaults, so it composes with explicit overrides — `fleetsim
// -quick -nodes 10000` is the scale smoke: the quick chaos profile
// over ten thousand nodes.
//
// -metrics attaches the telemetry plane to the chaos run — the
// privacy odometer is then asserted live against the certified n·ε
// envelope — and prints the final JSON snapshot to stdout. -debug
// additionally serves the registry on /debug/vars, a Prometheus
// text-exposition endpoint on /metrics, and net/http/pprof at ADDR,
// and keeps the process alive after the run for inspection.
//
// -tracefile PATH (implies -metrics) attaches the per-report flight
// recorder and the privacy burn-rate alerter, writes the chaos run's
// spans as Chrome/Perfetto trace-event JSON to PATH (load it at
// ui.perfetto.dev or chrome://tracing), self-checks the export —
// every ACKed report must carry a complete, causally ordered span
// chain and the JSON must be shape-valid — and prints a per-stage
// latency attribution table (p50/p95/p99, stratified by retransmit
// count). A tripped burn alert or a failed self-check exits non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"

	"ulpdp/internal/fault"
	"ulpdp/internal/fleet"
	"ulpdp/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "CI smoke preset (small fleet, filthy link, crashes)")
	nodes := flag.Int("nodes", 8, "fleet size")
	reports := flag.Int("reports", 8, "reports per node")
	seed := flag.Uint64("seed", 1, "master seed (URNG streams, link schedules, jitter)")
	drop := flag.Float64("drop", 0.25, "per-frame drop probability")
	dup := flag.Float64("dup", 0.15, "per-frame duplication probability")
	reorder := flag.Float64("reorder", 0.15, "per-frame reorder probability")
	corrupt := flag.Float64("corrupt", 0.05, "per-frame corruption probability")
	maxDelay := flag.Int("maxdelay", 3, "max reorder holdback in frames")
	crashEvery := flag.Int("crash-every", 0, "crash-recover each node after every k-th report (0 = never)")
	durable := flag.Bool("durable", false, "run the collector on a durable checkpoint store")
	nvmdir := flag.String("nvmdir", "", "back the chaos run's durable state with file-based NVM under this directory; rerunning resumes a killed run")
	collectorCrash := flag.String("collectorcrash", "", "comma-separated checkpoint word-write counts at which the collector crashes and recovers (implies -durable)")
	workers := flag.Int("workers", 0, "node worker-pool size (0 = 8x GOMAXPROCS)")
	shards := flag.Int("shards", 0, "collector ingest shards (0 = GOMAXPROCS)")
	deadline := flag.Duration("deadline", 0, "wall-clock ceiling for each fleet run (0 = library default)")
	metrics := flag.Bool("metrics", false, "attach the telemetry plane to the chaos run and print its JSON snapshot")
	traceFile := flag.String("tracefile", "", "write the chaos run's flight-recorder spans as Perfetto trace-event JSON to this path; implies -metrics")
	debugAddr := flag.String("debug", "", "serve /debug/vars (expvar), /metrics (Prometheus), and /debug/pprof at this address; implies -metrics and blocks after the run")
	verbose := flag.Bool("v", false, "print per-node detail")
	flag.Parse()

	if *quick {
		// The preset only fills in flags the user didn't set, so
		// explicit overrides (e.g. -nodes 10000) survive it.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		preset := func(name string, p *int, v int) {
			if !set[name] {
				*p = v
			}
		}
		presetF := func(name string, p *float64, v float64) {
			if !set[name] {
				*p = v
			}
		}
		preset("nodes", nodes, 4)
		preset("reports", reports, 4)
		preset("crash-every", crashEvery, 2)
		preset("maxdelay", maxDelay, 3)
		presetF("drop", drop, 0.3)
		presetF("dup", dup, 0.2)
		presetF("reorder", reorder, 0.2)
		presetF("corrupt", corrupt, 0.1)
		if !set["collectorcrash"] {
			// One mid-run collector crash: word 100 lands inside the
			// admission WAL for any 4x4 fleet (16 admissions x 16
			// words), so the smoke exercises recovery every time.
			*collectorCrash = "100"
		}
	}

	crashSchedule, err := parseSchedule(*collectorCrash)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim: -collectorcrash:", err)
		return 2
	}

	cfg := fleet.Config{
		Nodes:            *nodes,
		Reports:          *reports,
		Seed:             *seed,
		CrashEvery:       *crashEvery,
		Workers:          *workers,
		Shards:           *shards,
		Deadline:         *deadline,
		Durable:          *durable || len(crashSchedule) > 0,
		NVMDir:           *nvmdir,
		CollectorCrashes: crashSchedule,
		Link: fault.LinkProfile{
			Drop: *drop, Duplicate: *dup, Reorder: *reorder,
			Corrupt: *corrupt, MaxDelay: *maxDelay,
		},
	}

	var reg *obs.Registry
	if *metrics || *debugAddr != "" || *traceFile != "" {
		reg = obs.NewRegistry()
		cfg.Obs = reg
	}
	if *traceFile != "" {
		// Size the ring so a full run can never drop a span: one slot
		// per (node, seq), doubled for headroom (NewFlightRecorder
		// rounds up to a power of two anyway).
		cfg.Flight = obs.NewFlightRecorder(cfg.Nodes * cfg.Reports * 2)
		// The alerter's plan is the certified per-report cap itself, so
		// a healthy fleet burns at exactly 1x and only a privacy
		// overspend — noising charged above its certification — trips.
		burn, berr := obs.NewBurnAlerter(obs.BurnConfig{
			EnvelopeMicroNats: obs.MicroNats(float64(cfg.Nodes*cfg.Reports) * fleet.PerReportCapNats),
			HorizonCharges:    uint64(cfg.Nodes * cfg.Reports),
		})
		if berr != nil {
			fmt.Fprintln(os.Stderr, "fleetsim: burn alerter:", berr)
			return 2
		}
		cfg.Burn = burn
	}
	if *debugAddr != "" {
		reg.PublishExpvar("ulpdp")
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", obs.PrometheusContentType)
			if err := obs.WritePrometheus(w, reg.Snapshot()); err != nil {
				fmt.Fprintln(os.Stderr, "fleetsim: /metrics:", err)
			}
		})
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "fleetsim: debug server:", err)
			}
		}()
		fmt.Printf("fleetsim: serving /debug/vars, /metrics, and /debug/pprof on %s\n", *debugAddr)
	}

	fmt.Printf("fleetsim: %d nodes x %d reports, seed %d, link{drop %.2f dup %.2f reorder %.2f corrupt %.2f delay<=%d}, crash-every %d, durable %v, collector-crashes %v\n",
		cfg.Nodes, cfg.Reports, cfg.Seed, cfg.Link.Drop, cfg.Link.Duplicate,
		cfg.Link.Reorder, cfg.Link.Corrupt, cfg.Link.MaxDelay, cfg.CrashEvery,
		cfg.Durable, cfg.CollectorCrashes)

	chaos, err := fleet.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim: chaos run:", err)
		return 1
	}
	printRun("chaos", chaos, *verbose)

	bad := 0
	for _, v := range chaos.Violations {
		fmt.Fprintln(os.Stderr, "fleetsim: invariant 1 (chaos):", v)
		bad++
	}
	if chaos.Resumed {
		// A resumed run delivered only the reports the dead process
		// left undone; a fresh same-seed baseline would cover all of
		// them, so bit-exact comparison is meaningless. Invariant 1
		// (exactly-once over the union of both processes' reports) was
		// still checked above.
		fmt.Printf("fleetsim: resumed durable state under %s — skipping the lossless baseline comparison\n", *nvmdir)
	} else {
		lossless := cfg
		lossless.Link = fault.LinkProfile{}
		// The baseline is the reference: no link chaos, no collector
		// crashes, and no durable directory (the chaos run with
		// restarts must still converge to it from fresh state).
		lossless.CollectorCrashes = nil
		lossless.NVMDir = ""
		// The baseline gets no plane: reusing the chaos run's registry
		// would double-charge the odometer channels, and reusing its
		// flight ring would collide span keys across runs.
		lossless.Obs = nil
		lossless.Flight = nil
		lossless.Burn = nil
		baseline, err := fleet.Run(lossless)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim: lossless baseline:", err)
			return 1
		}
		printRun("lossless", baseline, false)
		for _, v := range baseline.Violations {
			fmt.Fprintln(os.Stderr, "fleetsim: invariant 1 (lossless):", v)
			bad++
		}
		for _, v := range fleet.CompareRuns(chaos, baseline) {
			fmt.Fprintln(os.Stderr, "fleetsim: invariant 2:", v)
			bad++
		}
	}
	if chaos.Obs != nil {
		raw, jerr := json.MarshalIndent(chaos.Obs, "", "  ")
		if jerr != nil {
			fmt.Fprintln(os.Stderr, "fleetsim: snapshot:", jerr)
			return 1
		}
		fmt.Println(string(raw))
		if odo, ok := chaos.Obs.Odometers["budget.odometer"]; ok {
			fmt.Printf("fleetsim: odometer: %.6f nats spent across %d channels in %d charges\n",
				odo.TotalNats, len(odo.ChannelMicroNats), odo.Charges)
		}
	}
	if *traceFile != "" {
		bad += writeTrace(*traceFile, chaos, cfg.Durable)
	}
	if chaos.BurnAlert {
		fmt.Fprintf(os.Stderr, "fleetsim: burn alert: odometer burn exceeded plan (tripped at %d µnat of a %d µnat envelope)\n",
			chaos.Burn.TrippedAtMicroNats, obs.MicroNats(float64(cfg.Nodes*cfg.Reports)*fleet.PerReportCapNats))
		bad++
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: FAIL: %d violation(s)\n", bad)
		return 1
	}
	if chaos.Resumed {
		fmt.Println("fleetsim: OK — exactly-once accounting held across the restart (recovered ledgers re-ACKed bit-exactly)")
	} else {
		fmt.Println("fleetsim: OK — exactly-once accounting held and the chaos run converged to the lossless baseline bit-exactly")
	}
	if *debugAddr != "" {
		fmt.Println("fleetsim: run complete; debug server still up (Ctrl-C to exit)")
		select {}
	}
	return 0
}

// writeTrace exports the chaos run's flight spans as Perfetto
// trace-event JSON, self-checks the export (shape-valid JSON, a
// complete causally ordered chain for every ACKed report), and prints
// the per-stage latency attribution table. Returns the number of
// violations found.
func writeTrace(path string, r fleet.Result, durable bool) int {
	if r.Flight == nil {
		fmt.Fprintln(os.Stderr, "fleetsim: -tracefile: run produced no flight snapshot")
		return 1
	}
	bad := 0
	if r.Flight.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: flight recorder dropped %d spans (capacity %d) — trace is incomplete\n",
			r.Flight.Dropped, r.Flight.Capacity)
		bad++
	}
	for _, v := range obs.ValidateFlight(r.Flight, true, durable) {
		fmt.Fprintln(os.Stderr, "fleetsim: span chain:", v)
		bad++
	}
	var alerts []obs.Event
	if r.Obs != nil {
		for _, e := range r.Obs.Traces["trace"].Events {
			if e.Kind == obs.EvBurnAlert {
				alerts = append(alerts, e)
			}
		}
	}
	data, err := obs.PerfettoJSON(r.Flight, alerts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim: trace export:", err)
		return bad + 1
	}
	for _, v := range obs.ValidatePerfettoJSON(data) {
		fmt.Fprintln(os.Stderr, "fleetsim: trace shape:", v)
		bad++
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim: trace write:", err)
		return bad + 1
	}
	acked := 0
	for _, v := range r.Flight.Spans {
		if v.Acked() {
			acked++
		}
	}
	fmt.Printf("fleetsim: wrote %d spans (%d acked) to %s — load at ui.perfetto.dev\n",
		len(r.Flight.Spans), acked, path)

	rows := obs.Attribute(r.Flight)
	if len(rows) > 0 {
		fmt.Println("fleetsim: stage latency attribution (µs, stratified by retransmits):")
		fmt.Printf("  %-28s %-6s %8s %10s %10s %10s\n", "transition", "retx", "count", "p50", "p95", "p99")
		for _, row := range rows {
			fmt.Printf("  %-28s %-6s %8d %10.1f %10.1f %10.1f\n",
				row.Transition, row.Stratum, row.Count, row.P50, row.P95, row.P99)
		}
	}
	return bad
}

// parseSchedule parses the -collectorcrash flag: a comma-separated,
// strictly ascending list of non-negative word-write counts.
func parseSchedule(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad word count %q: %v", p, err)
		}
		if w < 0 {
			return nil, fmt.Errorf("negative word count %d", w)
		}
		if len(out) > 0 && w <= out[len(out)-1] {
			return nil, fmt.Errorf("schedule must be strictly ascending at %d", w)
		}
		out = append(out, w)
	}
	return out, nil
}

func printRun(name string, r fleet.Result, verbose bool) {
	fmt.Printf("%s: aggregate %d reports over %d nodes, sum %d; link{sent %d dropped %d dup %d reordered %d corrupt %d overflow %d}; collector{accepted %d dup %d shed %d breaker-drops %d fail-closed %d recoveries %d checkpoint-words %d}\n",
		name, r.Aggregate.Reports, r.Aggregate.Nodes, r.Aggregate.Sum,
		r.Link.Sent, r.Link.Dropped, r.Link.Duplicated, r.Link.Reordered,
		r.Link.CorruptedInFlight, r.Link.Overflow,
		r.Collector.Accepted, r.Collector.Duplicates, r.Collector.Backpressure,
		r.Collector.BreakerDrops, r.Collector.FailClosed,
		r.CollectorRecoveries, r.CheckpointWords)
	if !verbose {
		return
	}
	for i, n := range r.Nodes {
		fmt.Printf("  node %d: %d recorded, %d journaled, spend %.3f nats, crashes %d, redeliveries %d\n",
			i, len(n.Recorded), len(n.Released), n.SpendNats, n.Crashes, n.Redeliveries)
	}
}
