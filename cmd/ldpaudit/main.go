// Command ldpaudit certifies a privacy configuration: given a sensor
// range, ε and the fixed-point RNG geometry, it runs the exact
// analysis and reports whether local differential privacy actually
// holds — for the naive implementation (it won't), for the paper's
// guards at their certified thresholds, and for the constant-time
// variant — plus the guard windows and budget charging bands a
// hardware team needs.
//
// Usage:
//
//	ldpaudit -lo 0 -hi 10 -eps 0.5 -bu 17 -by 12 -delta 0.3125 [-mult 2] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ulpdp"
	"ulpdp/internal/core"
)

// Audit is the machine-readable report.
type Audit struct {
	Params ulpdp.Params `json:"params"`
	Mult   float64      `json:"mult"`

	BaselineInfinite bool `json:"baseline_infinite"`

	ThresholdingThreshold int64   `json:"thresholding_threshold,omitempty"`
	ThresholdingLoss      float64 `json:"thresholding_loss,omitempty"`
	ThresholdingOK        bool    `json:"thresholding_ok"`

	ResamplingThreshold int64   `json:"resampling_threshold,omitempty"`
	ResamplingLoss      float64 `json:"resampling_loss,omitempty"`
	ResamplingOK        bool    `json:"resampling_ok"`

	ConstantTimeThreshold int64   `json:"constant_time_threshold,omitempty"`
	ConstantTimeLoss      float64 `json:"constant_time_loss,omitempty"`
	ConstantTimeOK        bool    `json:"constant_time_ok"`

	InteriorLoss float64        `json:"interior_loss,omitempty"`
	Segments     []core.Segment `json:"segments,omitempty"`

	Errors []string `json:"errors,omitempty"`
}

func main() {
	lo := flag.Float64("lo", 0, "sensor range lower bound")
	hi := flag.Float64("hi", 10, "sensor range upper bound")
	eps := flag.Float64("eps", 0.5, "per-report privacy parameter ε")
	bu := flag.Int("bu", 17, "URNG magnitude bits")
	by := flag.Int("by", 12, "signed noise output bits")
	delta := flag.Float64("delta", 0, "quantization step Δ (default: range/256)")
	mult := flag.Float64("mult", 2, "loss multiplier target (worst case mult·ε)")
	candidates := flag.Int("k", 4, "constant-time candidate samples")
	jsonOut := flag.Bool("json", false, "emit the audit as JSON")
	flag.Parse()

	if *delta == 0 {
		*delta = (*hi - *lo) / 256
	}
	par := ulpdp.Params{Lo: *lo, Hi: *hi, Eps: *eps, Bu: *bu, By: *by, Delta: *delta}
	if err := par.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ldpaudit:", err)
		os.Exit(2)
	}

	audit := run(par, *mult, *candidates)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(audit); err != nil {
			fmt.Fprintln(os.Stderr, "ldpaudit:", err)
			os.Exit(1)
		}
		return
	}
	render(audit)
	if !audit.ThresholdingOK && !audit.ResamplingOK {
		os.Exit(1)
	}
}

func run(par ulpdp.Params, mult float64, k int) Audit {
	a := Audit{Params: par, Mult: mult}
	bound := mult * par.Eps

	if rep, err := ulpdp.CertifyBaseline(par); err == nil {
		a.BaselineInfinite = rep.Infinite
	} else {
		a.Errors = append(a.Errors, "baseline: "+err.Error())
	}

	if th, err := ulpdp.ThresholdingThreshold(par, mult); err == nil {
		a.ThresholdingThreshold = th
		if rep, err := ulpdp.CertifyThresholding(par, th); err == nil {
			a.ThresholdingLoss = rep.MaxLoss
			a.ThresholdingOK = rep.Bounded(bound)
		}
		an := core.CachedAnalyzer(par)
		a.InteriorLoss = an.InteriorLoss(th)
		a.Segments = an.Segments(th, chargingMults(mult))
	} else {
		a.Errors = append(a.Errors, "thresholding: "+err.Error())
	}

	if th, err := ulpdp.ResamplingThreshold(par, mult); err == nil {
		a.ResamplingThreshold = th
		if rep, err := ulpdp.CertifyResampling(par, th); err == nil {
			a.ResamplingLoss = rep.MaxLoss
			a.ResamplingOK = rep.Bounded(bound)
		}
	} else {
		a.Errors = append(a.Errors, "resampling: "+err.Error())
	}

	if th, err := core.ExactConstantTimeThreshold(par, mult, k); err == nil {
		a.ConstantTimeThreshold = th
		if rep, err := ulpdp.CertifyConstantTime(par, th, k); err == nil {
			a.ConstantTimeLoss = rep.MaxLoss
			a.ConstantTimeOK = rep.Bounded(bound)
		}
	} else {
		a.Errors = append(a.Errors, "constant-time: "+err.Error())
	}
	return a
}

func chargingMults(mult float64) []float64 {
	var out []float64
	for _, m := range []float64{1.25, 1.5, 1.75} {
		if m < mult {
			out = append(out, m)
		}
	}
	return out
}

func render(a Audit) {
	p := a.Params
	fmt.Printf("LDP audit: range [%g, %g], ε=%g, Bu=%d, By=%d, Δ=%g (target %.3g·ε = %.4f nats)\n\n",
		p.Lo, p.Hi, p.Eps, p.Bu, p.By, p.Delta, a.Mult, a.Mult*p.Eps)
	verdict := func(ok bool) string {
		if ok {
			return "CERTIFIED"
		}
		return "NOT CERTIFIED"
	}
	fmt.Printf("naive (no guard):        %s\n", map[bool]string{true: "INFINITE LOSS — do not ship", false: "unexpectedly finite (check config)"}[a.BaselineInfinite])
	if a.ThresholdingThreshold > 0 {
		fmt.Printf("thresholding:            %s  threshold %d steps, exact loss %.4f\n",
			verdict(a.ThresholdingOK), a.ThresholdingThreshold, a.ThresholdingLoss)
	}
	if a.ResamplingThreshold > 0 {
		fmt.Printf("resampling:              %s  threshold %d steps, exact loss %.4f\n",
			verdict(a.ResamplingOK), a.ResamplingThreshold, a.ResamplingLoss)
	}
	if a.ConstantTimeThreshold > 0 {
		fmt.Printf("constant-time (k=4):     %s  threshold %d steps, exact loss %.4f\n",
			verdict(a.ConstantTimeOK), a.ConstantTimeThreshold, a.ConstantTimeLoss)
	}
	if a.InteriorLoss > 0 {
		fmt.Printf("\nbudget charging: in-range %.4f nats", a.InteriorLoss)
		for _, s := range a.Segments {
			fmt.Printf("; ≤%d steps beyond: %.2f·ε", s.Offset, s.Mult)
		}
		fmt.Println()
	}
	for _, e := range a.Errors {
		fmt.Println("note:", e)
	}
}
