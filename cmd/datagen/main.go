// Command datagen emits the synthetic Table I datasets as CSV.
//
// Usage:
//
//	datagen [-seed N] [-n N] [-list] [dataset]
//
// Without a dataset argument all seven are written to files named
// after the dataset; with one, its CSV goes to stdout.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"ulpdp"
)

func main() {
	seed := flag.Uint64("seed", 2018, "generator seed")
	n := flag.Int("n", 0, "override the entry count (0 = Table I size)")
	list := flag.Bool("list", false, "list dataset names and exit")
	flag.Parse()

	if *list {
		for _, m := range ulpdp.Datasets() {
			fmt.Printf("%-24s %8d entries  [%g, %g]\n", m.Name, m.Entries, m.Min, m.Max)
		}
		return
	}

	if name := flag.Arg(0); name != "" {
		m, err := ulpdp.DatasetByName(name)
		if err != nil {
			fatal(err)
		}
		if err := writeCSV(os.Stdout, m, *seed, *n); err != nil {
			fatal(err)
		}
		return
	}

	for _, m := range ulpdp.Datasets() {
		fn := m.FileName()
		f, err := os.Create(fn)
		if err != nil {
			fatal(err)
		}
		if err := writeCSV(f, m, *seed, *n); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", fn)
	}
}

func writeCSV(w io.Writer, m ulpdp.Dataset, seed uint64, n int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %s — %s\nvalue\n", m.Name, m.Source); err != nil {
		return err
	}
	var data []float64
	if n > 0 {
		data = m.GenerateN(n, seed)
	} else {
		data = m.Generate(seed)
	}
	for _, v := range data {
		if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64) + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
