// Command dpboxsim drives a cycle-level DP-Box interactively through
// its command port, the way firmware would.
//
// Usage:
//
//	dpboxsim [-budget N] [-replenish N] [-bu N] [-by N] [-mult F]
//	         [-health N] [-stuck W] [-vcd FILE] [-metrics] [-debug ADDR]
//	         [-nvmdir DIR]
//
// Then one command per line on stdin:
//
//	eps <shift>         set ε = 2^-shift
//	range <lo> <hi>     set the sensor range (steps)
//	mode <t|r>          thresholding / resampling
//	rr                  randomized-response mode (threshold 0)
//	noise <x>           noise a sensor value (steps)
//	run <x> <count>     noise x repeatedly, print a summary
//	status              show phase, budget, threshold, cycles
//	metrics             print the telemetry snapshot (needs -metrics)
//	quit
//
// -nvmdir backs the budget journal with the file-based NVM medium
// under DIR: killing the session and rerunning with the same DIR
// secure-boots from the journal — budget spend, the release window,
// and sequence numbering all survive the restart.
//
// -metrics attaches the telemetry plane (privacy odometer, counters,
// trace ring) and prints its final JSON snapshot when the session
// ends. -debug additionally serves the plane on /debug/vars (expvar),
// Prometheus text exposition on /metrics, and /debug/pprof at ADDR
// for the session's lifetime.
//
// The exit status reports the box's final state: 0 when the session
// ends with a live, healthy box; 1 when it ends with the box dead
// (power-rail failure) or refusing service (URNG health gate closed),
// so scripted runs can detect a box that stopped serving.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"

	"ulpdp"
	"ulpdp/internal/fault"
	"ulpdp/internal/obs"
)

type session struct {
	box *ulpdp.DPBox
	out *bufio.Writer
	reg *ulpdp.ObsRegistry // nil without -metrics
}

func main() {
	os.Exit(run())
}

func run() int {
	budgetNats := flag.Float64("budget", 50, "privacy budget in nats")
	replenish := flag.Uint64("replenish", 0, "replenishment period in cycles (0 = never)")
	bu := flag.Int("bu", 17, "URNG magnitude bits")
	by := flag.Int("by", 14, "noise output bits")
	mult := flag.Float64("mult", 2, "certified loss multiplier")
	vcdPath := flag.String("vcd", "", "write a VCD waveform of the session to this file")
	health := flag.Uint64("health", 0, "run the URNG health battery every N cycles (0 = off)")
	stuck := flag.Int("stuck", -1, "inject a stuck-word URNG fault with this word (-1 = off)")
	metrics := flag.Bool("metrics", false, "attach the telemetry plane and print its JSON snapshot on exit")
	debugAddr := flag.String("debug", "", "serve /debug/vars (expvar), /metrics (Prometheus), and /debug/pprof at this address; implies -metrics")
	nvmdir := flag.String("nvmdir", "", "back the budget journal with file-based NVM under this directory; reopening resumes the prior session's ledger and release window")
	flag.Parse()

	cfg := ulpdp.DPBoxConfig{Bu: *bu, By: *by, Mult: *mult, HealthEvery: *health}
	var reg *ulpdp.ObsRegistry
	if *metrics || *debugAddr != "" {
		reg = ulpdp.NewObsRegistry()
		cfg.Obs = ulpdp.NewDPBoxMetrics(reg, 1)
	}
	if *debugAddr != "" {
		reg.PublishExpvar("ulpdp")
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", obs.PrometheusContentType)
			if err := obs.WritePrometheus(w, reg.Snapshot()); err != nil {
				fmt.Fprintln(os.Stderr, "dpboxsim: /metrics:", err)
			}
		})
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dpboxsim: debug server:", err)
			}
		}()
		fmt.Printf("dpboxsim: serving /debug/vars, /metrics, and /debug/pprof on %s\n", *debugAddr)
	}
	if *stuck >= 0 {
		fp := fault.NewPlane()
		fp.SetURNGFault(fault.StuckWord(uint32(*stuck)))
		cfg.Faults = fp
	}
	var jnl *ulpdp.DPBoxJournal
	if *nvmdir != "" {
		j, err := ulpdp.OpenDPBoxJournal(*nvmdir)
		if err != nil {
			fatal(err)
		}
		defer j.Close()
		jnl = j
		cfg.Journal = jnl
	}
	var box *ulpdp.DPBox
	var err error
	if jnl != nil && jnl.Writes() > 0 {
		// Durable state from a previous session: secure-boot from the
		// journal instead of re-initializing (which would reset spend).
		box, err = ulpdp.RecoverDPBox(cfg, jnl)
	} else {
		box, err = ulpdp.NewDPBox(cfg)
	}
	if err != nil {
		fatal(err)
	}
	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			fatal(err)
		}
		tr, err := ulpdp.NewVCDTracer(f)
		if err != nil {
			fatal(err)
		}
		box.SetTracer(tr)
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "dpboxsim: vcd:", err)
			}
			f.Close()
		}()
	}
	s := &session{box: box, out: bufio.NewWriter(os.Stdout), reg: reg}
	if box.Phase() == ulpdp.DPBoxPhaseInit {
		if err := box.Initialize(*budgetNats, *replenish); err != nil {
			fatal(err)
		}
		s.printf("DP-Box initialized: budget %.2f nats, replenish every %d cycles\n", *budgetNats, *replenish)
	} else {
		s.printf("DP-Box recovered from %s: budget %.3f nats remaining, next seq %d\n",
			*nvmdir, box.BudgetRemaining(), box.NextSeq())
	}
	s.printf("configure with `eps <shift>` and `range <lo> <hi>`, then `noise <x>`\n")

	sc := bufio.NewScanner(os.Stdin)
	for {
		s.printf("> ")
		s.out.Flush()
		if !sc.Scan() {
			return s.exitCode()
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if err := s.dispatch(fields); err != nil {
			if errors.Is(err, errQuit) {
				return s.exitCode()
			}
			s.printf("error: %v\n", err)
		}
	}
}

// exitCode inspects the box as the session ends: a dead or refusing
// box turns into a non-zero exit so scripts and CI notice.
func (s *session) exitCode() int {
	if s.reg != nil {
		if err := s.printSnapshot(); err != nil {
			fmt.Fprintln(os.Stderr, "dpboxsim: snapshot:", err)
		}
	}
	s.out.Flush()
	switch {
	case s.box.Phase() == ulpdp.DPBoxPhaseDead:
		fmt.Fprintln(os.Stderr, "dpboxsim: session ended with a dead DP-Box (power-rail failure)")
		return 1
	case !s.box.Healthy():
		fmt.Fprintln(os.Stderr, "dpboxsim: session ended with an unhealthy DP-Box (URNG health gate closed, serving cache only)")
		return 1
	}
	return 0
}

var errQuit = errors.New("quit")

func (s *session) printf(format string, args ...any) {
	fmt.Fprintf(s.out, format, args...)
}

func (s *session) dispatch(fields []string) error {
	box := s.box
	switch fields[0] {
	case "quit", "exit":
		return errQuit
	case "status":
		s.printf("phase=%v budget=%.3f nats threshold=%d steps eps=%g cycles=%d\n",
			box.Phase(), box.BudgetRemaining(), box.Threshold(), box.Epsilon(), box.Cycles())
	case "metrics":
		if s.reg == nil {
			return errors.New("telemetry plane not attached (run with -metrics)")
		}
		return s.printSnapshot()
	case "eps":
		shift, err := argInt(fields, 1)
		if err != nil {
			return err
		}
		return box.Command(ulpdp.DPBoxCmdSetEpsilon, shift)
	case "range":
		lo, err := argInt(fields, 1)
		if err != nil {
			return err
		}
		hi, err := argInt(fields, 2)
		if err != nil {
			return err
		}
		if err := box.Command(ulpdp.DPBoxCmdSetRangeLower, lo); err != nil {
			return err
		}
		return box.Command(ulpdp.DPBoxCmdSetRangeUpper, hi)
	case "mode":
		if len(fields) < 2 {
			return errors.New("usage: mode t|r")
		}
		return box.SetResampling(fields[1] == "r")
	case "rr":
		return box.OverrideThreshold(0)
	case "noise":
		x, err := argInt(fields, 1)
		if err != nil {
			return err
		}
		r, err := box.NoiseValue(x)
		if err != nil {
			return err
		}
		s.printf("y=%d cycles=%d resamples=%d charged=%.3f cached=%v budget=%.3f\n",
			r.Value, r.Cycles, r.Resamples, r.Charged, r.FromCache, box.BudgetRemaining())
	case "run":
		x, err := argInt(fields, 1)
		if err != nil {
			return err
		}
		count, err := argInt(fields, 2)
		if err != nil {
			return err
		}
		if count < 1 {
			return errors.New("count must be positive")
		}
		var cycles, resamples int
		var cached int
		var sum float64
		for i := int64(0); i < count; i++ {
			r, err := box.NoiseValue(x)
			if err != nil {
				return err
			}
			cycles += r.Cycles
			resamples += r.Resamples
			sum += float64(r.Value)
			if r.FromCache {
				cached++
			}
		}
		s.printf("%d runs: mean y=%.2f, avg cycles=%.3f, resamples=%d, cached=%d, budget=%.3f\n",
			count, sum/float64(count), float64(cycles)/float64(count), resamples, cached,
			box.BudgetRemaining())
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
	return nil
}

// printSnapshot dumps the registry as indented JSON plus a one-line
// odometer readout.
func (s *session) printSnapshot() error {
	snap := s.reg.Snapshot()
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	s.printf("%s\n", raw)
	if odo, ok := snap.Odometers["budget.odometer"]; ok {
		s.printf("odometer: %.6f nats spent in %d charges, %d replenishes\n",
			odo.TotalNats, odo.Charges, odo.Replenishes)
	}
	return nil
}

func argInt(fields []string, idx int) (int64, error) {
	if idx >= len(fields) {
		return 0, fmt.Errorf("missing argument %d", idx)
	}
	return strconv.ParseInt(fields[idx], 10, 64)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpboxsim:", err)
	os.Exit(1)
}
