// Budget control versus a repeating adversary (Section VI-D). An
// attacker asks the same sensor for its value over and over and
// averages the answers; without budget control the noise averages
// away, with it the cached response freezes the attacker's knowledge.
package main

import (
	"fmt"
	"log"

	"ulpdp"
	"ulpdp/internal/attack"
)

func main() {
	par := ulpdp.Params{Lo: 0, Hi: 10, Eps: 0.5, Bu: 17, By: 12, Delta: 10.0 / 32}
	const truth = 7.0
	points := []int{10, 100, 1000, 10000}

	fmt.Printf("adversary averages repeated requests for a value of %.1f (range [0,10], ε=0.5)\n\n", truth)
	fmt.Printf("%-18s", "requests:")
	for _, p := range points {
		fmt.Printf(" %9d", p)
	}
	fmt.Println()

	// Case 1: no budget — error vanishes, privacy is eventually lost.
	mech, err := ulpdp.NewThresholding(par, 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := attack.RunDedup(func() (float64, error) {
		return mech.Noise(truth).Value, nil
	}, 10000, truth, par.Range(), points)
	if err != nil {
		log.Fatal(err)
	}
	printRow("no budget", tr)

	// Cases 2 and 3: finite budgets — the error freezes once the
	// budget is spent and the DP-Box starts caching.
	for _, b := range []float64{50, 10} {
		ctl, err := ulpdp.NewBudget(par, ulpdp.BudgetConfig{Budget: b, Mult: 2})
		if err != nil {
			log.Fatal(err)
		}
		tr, err := attack.RunDedup(func() (float64, error) {
			r, err := ctl.Request(truth)
			return r.Value, err
		}, 10000, truth, par.Range(), points)
		if err != nil {
			log.Fatal(err)
		}
		printRow(fmt.Sprintf("budget %.0f nats", b), tr)
	}

	fmt.Println("\nrelative error: |estimate - truth| / range. Finite budgets floor the attack.")
}

func printRow(label string, tr attack.Trace) {
	fmt.Printf("%-18s", label)
	for _, e := range tr.RelErrs {
		fmt.Printf(" %9.4f", e)
	}
	fmt.Println()
}
