// Quickstart: noise a single sensor reading with a certified local-DP
// guarantee, and see why the naive fixed-point implementation is not
// acceptable.
package main

import (
	"fmt"
	"log"

	"ulpdp"
)

func main() {
	// A body-temperature sensor: range [34, 42] °C, reported at
	// ε = 0.5 through a 17-bit URNG and a 12-bit noise word, with the
	// sensor grid at 1/32 °C.
	par := ulpdp.Params{
		Lo: 34, Hi: 42,
		Eps:   0.5,
		Bu:    17,
		By:    12,
		Delta: 8.0 / 256,
	}

	// First: prove the naive implementation leaks. The exact analyzer
	// enumerates every output and finds values only some inputs can
	// produce — infinite privacy loss.
	rep, err := ulpdp.CertifyBaseline(par)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive fixed-point mechanism: infinite loss = %v\n", rep.Infinite)

	// The thresholding guard bounds the worst-case loss at 2ε. The
	// threshold is computed in closed form and certified exactly.
	const mult = 2
	th, err := ulpdp.ThresholdingThreshold(par, mult)
	if err != nil {
		log.Fatal(err)
	}
	cert, err := ulpdp.CertifyThresholding(par, th)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thresholding guard: threshold %d steps, exact worst-case loss %.4f <= %.4f nats\n",
		th, cert.MaxLoss, mult*par.Eps)

	// Noise some readings.
	mech, err := ulpdp.NewThresholding(par, mult, 42)
	if err != nil {
		log.Fatal(err)
	}
	for _, reading := range []float64{36.6, 38.2, 41.9} {
		r := mech.Noise(reading)
		fmt.Printf("true %.1f °C -> reported %+7.2f °C (clamped=%v)\n", reading, r.Value, r.Clamped)
	}

	// An aggregator averaging many users' noised readings still
	// recovers the population mean.
	const users = 2000
	var sum float64
	for i := 0; i < users; i++ {
		sum += mech.Noise(36.6).Value
	}
	fmt.Printf("mean of %d noised readings of 36.6 °C: %.2f °C\n", users, sum/users)

	// The telemetry plane: attach a registry to a cycle-level DP-Box
	// and the privacy odometer tracks cumulative ε spend live (a nil
	// plane costs nothing — see BenchmarkDPBoxObsDisabled).
	reg := ulpdp.NewObsRegistry()
	box, err := ulpdp.NewDPBox(ulpdp.DPBoxConfig{Obs: ulpdp.NewDPBoxMetrics(reg, 1)})
	if err != nil {
		log.Fatal(err)
	}
	if err := box.Initialize(4, 0); err != nil {
		log.Fatal(err)
	}
	if err := box.Configure(1, 0, 16); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := box.NoiseValue(8); err != nil {
			log.Fatal(err)
		}
	}
	odo := reg.Snapshot().Odometers["budget.odometer"]
	fmt.Printf("privacy odometer: %.4f nats spent in %d charges; ledger agrees: %.4f of 4 nats left\n",
		odo.TotalNats, odo.Charges, box.BudgetRemaining())
}
