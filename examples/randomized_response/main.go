// Randomized response: the DP-Box's categorical mode (Section VI-E).
// A survey asks a yes/no question; every device flips its answer with
// a calibrated probability, and the aggregator still recovers the
// population rate — without ever learning any individual's answer.
package main

import (
	"fmt"
	"log"
	"math"

	"ulpdp"
	"ulpdp/internal/urng"
)

func main() {
	par := ulpdp.Params{
		Lo: 0, Hi: 1, // categories "no" / "yes"
		Eps:   1,
		Bu:    17,
		By:    14,
		Delta: 1.0 / 64,
	}
	rr, err := ulpdp.NewRandomizedResponse(par, 9)
	if err != nil {
		log.Fatal(err)
	}
	q1, q2 := rr.FlipProbs()
	fmt.Printf("randomized response: flip probabilities %.4f / %.4f, effective ε = %.3f\n\n",
		q1, q2, rr.RREpsilon())

	const trueRate = 0.37
	rng := urng.NewSplitMix64(5)
	q := (q1 + q2) / 2

	fmt.Printf("%8s %12s %12s %10s\n", "N", "true yes", "estimated", "error")
	for _, n := range []int{200, 1000, 5000, 25000} {
		var trueYes, reportedYes int
		for i := 0; i < n; i++ {
			answer := 0.0
			if rng.Float64() < trueRate {
				answer = 1
				trueYes++
			}
			if rr.Noise(answer).Value == 1 {
				reportedYes++
			}
		}
		// Debias: E[reported] = (1-q)·yes + q·(n-yes).
		est := (float64(reportedYes) - q*float64(n)) / (1 - 2*q)
		fmt.Printf("%8d %12d %12.1f %10.1f\n", n, trueYes, est, math.Abs(est-float64(trueYes)))
	}

	fmt.Println("\nindividual reports reveal almost nothing:")
	for i := 0; i < 5; i++ {
		fmt.Printf("  true answer: yes -> reported %v\n", rr.Noise(1).Value == 1)
	}
}
