// Duty-cycled sensing: the complete ULP node running real firmware.
// An emulated MSP430 sleeps in LPM0; a hardware timer wakes it every
// sampling period; the interrupt service routine reads the sensor
// register, pushes the value through the memory-mapped DP-Box, stores
// the noised result and goes back to sleep. The DP-Box's two-cycle
// noising is what keeps the wake window — and the node's energy —
// tiny.
package main

import (
	"fmt"
	"log"
	"math"

	"ulpdp"
	"ulpdp/internal/node"
)

func main() {
	box, err := ulpdp.NewDPBox(ulpdp.DPBoxConfig{Bu: 14, By: 12, Mult: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := box.Initialize(500, 0); err != nil {
		log.Fatal(err)
	}
	n := node.New(box, 0x0180)

	// A slow sinusoidal "temperature" trace on a 64-step grid.
	trace := make([]int16, 97)
	for i := range trace {
		trace[i] = int16(32 + 28*math.Sin(2*math.Pi*float64(i)/97))
	}
	sampler, err := node.NewSampler(n, node.SamplerConfig{
		SensorAddr: 0x01A0,
		Trace:      trace,
		Period:     2000, // sample every 2000 cycles (125 µs at 16 MHz)
		Vector:     4,
		EpsShift:   1, // ε = 0.5
		RangeLo:    0, RangeHi: 64,
	})
	if err != nil {
		log.Fatal(err)
	}

	const horizon = 100_000
	if err := sampler.Run(horizon); err != nil {
		log.Fatal(err)
	}

	cpu := n.CPU
	samples := sampler.Samples()
	fmt.Printf("duty-cycled node ran %d cycles (%.1f ms at 16 MHz)\n",
		cpu.Cycles, float64(cpu.Cycles)/16000)
	fmt.Printf("  timer interrupts served: %d\n", sampler.Timer.Fires)
	fmt.Printf("  noised samples stored:   %d\n", len(samples))
	fmt.Printf("  core asleep:             %.1f%% of cycles\n",
		100*float64(cpu.IdleCycles())/float64(cpu.Cycles))
	fmt.Printf("  privacy budget left:     %.1f nats\n\n", box.BudgetRemaining())

	fmt.Println("first samples (true -> noised, steps):")
	for i := 0; i < 8 && i < len(samples); i++ {
		fmt.Printf("  %4d -> %5d\n", trace[i%len(trace)], samples[i])
	}

	var sumTrue, sumNoised float64
	for i, y := range samples {
		sumTrue += float64(trace[i%len(trace)])
		sumNoised += float64(y)
	}
	k := float64(len(samples))
	fmt.Printf("\nmean of %d true samples:   %.2f\n", len(samples), sumTrue/k)
	fmt.Printf("mean of %d noised samples: %.2f\n", len(samples), sumNoised/k)
	fmt.Println("(per-node noise at ε=0.5 is enormous by design — aggregate")
	fmt.Println(" across a fleet of nodes to recover population statistics)")
}
