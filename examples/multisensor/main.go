// Multi-sensor budget sharing (Section IV): a weather station carries
// three sensors whose readings are correlated. If each had its own
// privacy budget, an observer could combine them and triple the
// effective leak; a Bank makes them charge one shared ledger, so a
// drain through any sensor silences them all. The station also runs
// the constant-time resampling mode, closing the timing side channel.
package main

import (
	"fmt"
	"log"

	"ulpdp"
	"ulpdp/internal/urng"
)

func main() {
	cfg := ulpdp.DPBoxConfig{Bu: 17, By: 14, Mult: 2, ConstantTime: true, Candidates: 4}
	bank, err := ulpdp.NewBank(cfg, 3, 2026)
	if err != nil {
		log.Fatal(err)
	}
	// One shared budget for the whole station, replenished every
	// 100k cycles.
	if err := bank.Initialize(12, 100_000); err != nil {
		log.Fatal(err)
	}

	// Three sensors on 256-step grids: temperature, humidity,
	// pressure. All report at ε = 0.5 (shift 1).
	names := []string{"temperature", "humidity", "pressure"}
	for i := range names {
		if err := bank.Box(i).Configure(1, 0, 256); err != nil {
			log.Fatal(err)
		}
		if err := bank.Box(i).SetResampling(true); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("weather station: 3 sensors, shared budget %.1f nats, constant-time noising\n\n",
		bank.BudgetRemaining())

	rng := urng.NewSplitMix64(7)
	truth := []int64{130, 180, 200}
	fmt.Printf("%5s %-12s %8s %8s %8s %10s %8s\n",
		"req", "sensor", "true", "noised", "cycles", "charged", "budget")
	for req := 1; bank.BudgetRemaining() > 0 || req <= 24; req++ {
		i := rng.Intn(3)
		r, err := bank.Box(i).NoiseValue(truth[i])
		if err != nil {
			log.Fatal(err)
		}
		tag := ""
		if r.FromCache {
			tag = " (cached: shared budget spent)"
		}
		fmt.Printf("%5d %-12s %8d %8d %8d %10.3f %8.2f%s\n",
			req, names[i], truth[i], r.Value, r.Cycles, r.Charged,
			bank.BudgetRemaining(), tag)
		if req >= 24 {
			break
		}
	}

	fmt.Println("\nafter the replenishment period the station resumes:")
	bank.Tick(100_000)
	r, err := bank.Box(2).NoiseValue(truth[2])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget %.2f -> pressure report %d (charged %.3f)\n",
		bank.BudgetRemaining()+r.Charged, r.Value, r.Charged)
}
