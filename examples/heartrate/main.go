// Heart-rate monitoring: the paper's Statlog (Heart) scenario. A
// fleet of wearables reports blood pressure through local-DP
// mechanisms; the aggregator compares the utility of every setting
// for mean and median queries — a miniature of Tables II and III.
package main

import (
	"fmt"
	"log"

	"ulpdp"
	"ulpdp/internal/query"
)

func main() {
	meta, err := ulpdp.DatasetByName("Statlog (Heart)")
	if err != nil {
		log.Fatal(err)
	}
	data := meta.GenerateN(2000, 7)

	par := ulpdp.Params{
		Lo: meta.Min, Hi: meta.Max,
		Eps:   0.5,
		Bu:    17,
		By:    14,
		Delta: meta.Range() / 256,
	}

	type setting struct {
		name string
		mk   func() (ulpdp.Mechanism, error)
	}
	settings := []setting{
		{"ideal Laplace", func() (ulpdp.Mechanism, error) { return ulpdp.NewIdealLaplace(par, 1) }},
		{"FxP baseline (leaks!)", func() (ulpdp.Mechanism, error) { return ulpdp.NewBaseline(par, 1) }},
		{"resampling", func() (ulpdp.Mechanism, error) { return ulpdp.NewResampling(par, 2, 1) }},
		{"thresholding", func() (ulpdp.Mechanism, error) { return ulpdp.NewThresholding(par, 2, 1) }},
	}

	fmt.Printf("Statlog-like blood pressure, %d users, ε = %g\n\n", len(data), par.Eps)
	fmt.Printf("%-22s %16s %16s\n", "mechanism", "mean MAE (mmHg)", "median MAE (mmHg)")
	const trials = 20
	for _, s := range settings {
		mech, err := s.mk()
		if err != nil {
			log.Fatal(err)
		}
		mean := query.EvaluateMAE(mech, query.Mean, data, trials, par.Range())
		med := query.EvaluateMAE(mech, query.Median, data, trials, par.Range())
		fmt.Printf("%-22s %16.2f %16.2f\n", s.name, mean.MAE, med.MAE)
	}

	fmt.Println("\nprivacy certification (exact, enumerated):")
	rep, err := ulpdp.CertifyBaseline(par)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  baseline: infinite loss = %v\n", rep.Infinite)
	th, err := ulpdp.ThresholdingThreshold(par, 2)
	if err != nil {
		log.Fatal(err)
	}
	cert, err := ulpdp.CertifyThresholding(par, th)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  thresholding: worst-case loss %.4f nats (bound %.4f)\n", cert.MaxLoss, 2*par.Eps)
}
