// Indoor localization: the full ULP node pipeline. A WiFi-positioning
// sensor is read over a slow serial bus, its readings are noised by a
// cycle-level DP-Box in hardware, and an aggregator estimates the
// building's occupancy centroid — while the node accounts for every
// cycle spent.
package main

import (
	"fmt"
	"log"
	"math"

	"ulpdp"
	"ulpdp/internal/sensor"
)

func main() {
	meta, err := ulpdp.DatasetByName("UJIIndoorLoc")
	if err != nil {
		log.Fatal(err)
	}
	trace := meta.GenerateN(3000, 11)

	// The DP-Box works on the sensor's quantization grid.
	const gridSteps = 256
	step := meta.Range() / gridSteps
	loSteps := int64(math.Round(meta.Min / step))

	box, err := ulpdp.NewDPBox(ulpdp.DPBoxConfig{Bu: 17, By: 14, Mult: 2})
	if err != nil {
		log.Fatal(err)
	}
	// Boot: budget 10k nats (a long deployment), replenished daily
	// (86.4M cycles at 16 MHz ~ simplified to 1e6 here).
	if err := box.Initialize(10000, 1_000_000); err != nil {
		log.Fatal(err)
	}
	// ε = 0.5 (shift 1).
	if err := box.Configure(1, loSteps, loSteps+gridSteps); err != nil {
		log.Fatal(err)
	}

	node := sensor.Node{
		Sensor: sensor.NewReplay(trace, false),
		Bus:    sensor.NewBus(40), // 16 MHz core / 400 kHz I²C
	}

	var trueSum, noisedSum float64
	var busCycles, boxCycles uint64
	n := 0
	for {
		reading, err := node.Sample()
		if err != nil {
			break // trace exhausted
		}
		xs := int64(math.Round(reading.Value / step))
		r, err := box.NoiseValue(xs)
		if err != nil {
			log.Fatal(err)
		}
		trueSum += reading.Value
		noisedSum += float64(r.Value) * step
		busCycles += reading.BusCycles
		boxCycles += uint64(r.Cycles)
		n++
	}

	fmt.Printf("UJIIndoorLoc longitude, %d reports at ε = 0.5\n\n", n)
	fmt.Printf("true mean position:    %12.2f m\n", trueSum/float64(n))
	fmt.Printf("noised mean position:  %12.2f m\n", noisedSum/float64(n))
	fmt.Printf("\ncycle accounting per report:\n")
	fmt.Printf("  serial bus transfer: %6.0f cycles\n", float64(busCycles)/float64(n))
	fmt.Printf("  DP-Box noising:      %6.2f cycles\n", float64(boxCycles)/float64(n))
	fmt.Printf("  -> privacy hardware adds %.2f%% to the sensor access cost\n",
		100*float64(boxCycles)/float64(busCycles))
	fmt.Printf("\nbudget remaining: %.1f nats (threshold %d steps)\n",
		box.BudgetRemaining(), box.Threshold())
}
